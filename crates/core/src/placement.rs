//! Section-to-core placement policies.
//!
//! The paper leaves the hosting-core choice out of scope ("we assume the 5
//! sections can be hosted in 5 different cores"), so the simulator makes
//! the policy pluggable: anything implementing [`PlacementPolicy`] can
//! decide which core hosts each section. The built-in policies are the
//! closed set the simulator historically offered ([`Placement`]) plus a
//! load- and communication-aware heuristic ([`LoadAware`]) in the spirit
//! of the AMTHA task-to-processor assignment algorithm (De Giusti et al.):
//! each section goes to the core where it is estimated to *finish*
//! earliest, accounting for the NoC latency between the creator's core and
//! the candidate core.

use std::collections::HashMap;
use std::fmt;

use parsecs_noc::{CoreId, NocConfig, Topology};

use crate::{InstRecord, SectionId, SectionSpan, SourceKind};

/// A static description of the chip a placement decides over.
#[derive(Debug, Clone)]
pub struct ChipView {
    /// Number of cores available for hosting.
    pub cores: usize,
    /// Soft per-core section capacity (`max_section` in the paper).
    /// Policies should prefer cores below this limit but may exceed it
    /// when every core is full, so that runs always complete.
    pub max_sections_per_core: usize,
    /// The interconnect topology.
    pub topology: Topology,
    /// The interconnect timing.
    pub noc: NocConfig,
}

impl ChipView {
    /// One-way message latency between two cores under the chip's NoC
    /// timing.
    pub fn link_latency(&self, from: CoreId, to: CoreId) -> u64 {
        self.noc.base_latency + self.noc.per_hop_latency * self.topology.hops(from, to) as u64
    }
}

/// The cross-section dependence summary of a run, as a placement policy
/// sees it: for every consumer section, which earlier sections produce
/// its remote operands and with what weight (number of renaming requests
/// the timing model will charge between the pair).
///
/// Renaming always matches a consumer with the closest *preceding*
/// producer, so every edge points backward in the section total order —
/// when a policy walks sections in order, each edge's producer is already
/// placed.
#[derive(Debug, Clone, Default)]
pub struct SectionDeps {
    /// Per consumer section: `(producer section, request count)`, sorted
    /// by producer id.
    producers: Vec<Vec<(SectionId, u32)>>,
}

impl SectionDeps {
    /// Builds the summary from the resolved instruction records, counting
    /// one edge weight per remote register or memory source.
    pub fn from_records(sections: usize, records: &[InstRecord]) -> SectionDeps {
        let mut weights: Vec<HashMap<usize, u32>> = vec![HashMap::new(); sections];
        for record in records {
            for dep in record.reg_sources.iter().chain(&record.mem_sources) {
                if let SourceKind::Remote {
                    producer_section, ..
                } = dep.kind
                {
                    *weights[record.section.0]
                        .entry(producer_section.0)
                        .or_insert(0) += 1;
                }
            }
        }
        SectionDeps::from_weights(weights)
    }

    /// Builds the summary from an arena-backed trace — the same edges as
    /// [`SectionDeps::from_records`], read off the shared dependence
    /// slice.
    pub fn from_arena(sections: usize, arena: &parsecs_trace::TraceArena) -> SectionDeps {
        let mut weights: Vec<HashMap<usize, u32>> = vec![HashMap::new(); sections];
        for seq in 0..arena.len() {
            for dep in arena.sources(seq) {
                if let SourceKind::Remote {
                    producer_section, ..
                } = dep.kind()
                {
                    *weights[arena.section(seq).0]
                        .entry(producer_section.0)
                        .or_insert(0) += 1;
                }
            }
        }
        SectionDeps::from_weights(weights)
    }

    fn from_weights(weights: Vec<HashMap<usize, u32>>) -> SectionDeps {
        let producers = weights
            .into_iter()
            .map(|map| {
                let mut edges: Vec<(SectionId, u32)> = map
                    .into_iter()
                    .map(|(section, weight)| (SectionId(section), weight))
                    .collect();
                edges.sort_unstable();
                edges
            })
            .collect();
        SectionDeps { producers }
    }

    /// The remote-operand producers of `section`, with request counts.
    pub fn producers(&self, section: SectionId) -> &[(SectionId, u32)] {
        &self.producers[section.0]
    }
}

/// Decides which core hosts each section of a run.
///
/// Policies see the full totally-ordered section list up front (the
/// simulator replays a functional pre-execution, so the section structure
/// is known before timing starts) and return one [`CoreId`] per section.
/// The returned vector must be the same length as `sections` and every
/// core id must be below `chip.cores`; the simulator validates both.
pub trait PlacementPolicy: fmt::Debug + Send + Sync {
    /// A short, stable, human-readable policy name (used in reports,
    /// sweep labels and configuration equality).
    fn name(&self) -> &str;

    /// Assigns a hosting core to every section.
    fn assign(&self, sections: &[SectionSpan], chip: &ChipView) -> Vec<CoreId>;

    /// Whether the simulator should compute the [`SectionDeps`] summary
    /// and call [`PlacementPolicy::assign_with_deps`] instead of
    /// [`PlacementPolicy::assign`]. Defaults to `false`; communication-
    /// aware policies opt in.
    fn wants_dependences(&self) -> bool {
        false
    }

    /// Assigns a hosting core to every section, with the run's
    /// cross-section dependences available. The default ignores them and
    /// delegates to [`PlacementPolicy::assign`].
    fn assign_with_deps(
        &self,
        sections: &[SectionSpan],
        chip: &ChipView,
        _deps: &SectionDeps,
    ) -> Vec<CoreId> {
        self.assign(sections, chip)
    }
}

/// The built-in placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Sections are assigned to cores in creation order, round robin,
    /// spilling to the next core with free capacity. This is the policy
    /// implied by the paper's example ("we assume the 5 sections can be
    /// hosted in 5 different cores").
    #[default]
    RoundRobin,
    /// Each new section goes to the core with the fewest instructions
    /// currently assigned (a simple load-balancing heuristic).
    LeastLoaded,
}

impl PlacementPolicy for Placement {
    fn name(&self) -> &str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::LeastLoaded => "least-loaded",
        }
    }

    fn assign(&self, sections: &[SectionSpan], chip: &ChipView) -> Vec<CoreId> {
        match self {
            Placement::RoundRobin => {
                let cores = chip.cores;
                let capacity = chip.max_sections_per_core;
                let mut hosted = vec![0usize; cores];
                sections
                    .iter()
                    .map(|s| {
                        let preferred = s.id.0 % cores;
                        // Spill to the next core with free capacity; relax
                        // the limit when the whole chip is full.
                        let chosen = (0..cores)
                            .map(|offset| (preferred + offset) % cores)
                            .find(|c| hosted[*c] < capacity)
                            .unwrap_or(preferred);
                        hosted[chosen] += 1;
                        CoreId(chosen)
                    })
                    .collect()
            }
            Placement::LeastLoaded => {
                let capacity = chip.max_sections_per_core;
                let mut load = vec![0usize; chip.cores];
                let mut hosted = vec![0usize; chip.cores];
                sections
                    .iter()
                    .map(|s| {
                        // Prefer the least-loaded core that is still below
                        // the soft section capacity; relax the limit only
                        // when the whole chip is full, so runs always
                        // complete (the same rule RoundRobin applies).
                        let core = (0..chip.cores)
                            .filter(|c| hosted[*c] < capacity)
                            .min_by_key(|c| (load[*c], *c))
                            .unwrap_or_else(|| {
                                (0..chip.cores)
                                    .min_by_key(|c| (load[*c], *c))
                                    .expect("at least one core")
                            });
                        load[core] += s.len();
                        hosted[core] += 1;
                        CoreId(core)
                    })
                    .collect()
            }
        }
    }
}

/// An AMTHA-inspired, load- and communication-aware policy: each section
/// is placed on the core where its estimated *finish time* is earliest.
///
/// The estimate models what the timing simulator charges: a section
/// cannot start before its creator's fork has run and the section-creation
/// message has crossed the NoC from the creator's core, and a core runs
/// the sections queued on it one after another (one instruction per
/// cycle). Ties go to the lowest core id, which keeps small runs compact
/// and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadAware;

impl PlacementPolicy for LoadAware {
    fn name(&self) -> &str {
        "load-aware"
    }

    fn assign(&self, sections: &[SectionSpan], chip: &ChipView) -> Vec<CoreId> {
        let cores = chip.cores;
        let capacity = chip.max_sections_per_core;
        // Per-core time at which the core becomes free, per-core hosted
        // count, and per-section estimated fetch-start time.
        let mut free_at = vec![0u64; cores];
        let mut hosted = vec![0usize; cores];
        let mut start_at: Vec<u64> = Vec::with_capacity(sections.len());
        let mut core_of: Vec<CoreId> = Vec::with_capacity(sections.len());

        for span in sections {
            // A section becomes available once its creator has fetched the
            // fork (sections run concurrently with their creator from that
            // point on) and the section-creation message has crossed the
            // NoC to the candidate core.
            let candidate = |c: usize| -> u64 {
                let ready = match span.creator {
                    Some((SectionId(creator), fork_seq)) => {
                        let fork_offset =
                            fork_seq.saturating_sub(sections[creator].start) as u64 + 1;
                        let creator_core = core_of[creator];
                        start_at[creator] + fork_offset + chip.link_latency(creator_core, CoreId(c))
                    }
                    None => 0,
                };
                ready.max(free_at[c])
            };
            // Prefer cores below the capacity limit; relax when full.
            let pool: Vec<usize> = {
                let below: Vec<usize> = (0..cores).filter(|c| hosted[*c] < capacity).collect();
                if below.is_empty() {
                    (0..cores).collect()
                } else {
                    below
                }
            };
            let chosen = pool
                .into_iter()
                .min_by_key(|c| (candidate(*c) + span.len() as u64, *c))
                .expect("at least one core");
            let begun = candidate(chosen);
            free_at[chosen] = begun + span.len() as u64;
            hosted[chosen] += 1;
            start_at.push(begun);
            core_of.push(CoreId(chosen));
        }
        core_of
    }
}

/// A chained-writer co-location policy: each section is placed to
/// minimise its estimated finish time *plus* the renaming round trips it
/// will pay to the cores hosting its remote-operand producers.
///
/// This targets the workload class where writers of the same datum are
/// chained across sections (the histogram's bucket counters, the chain
/// sum's accumulator): the consumer of a chained value stalls its fetch
/// stage until the producer's value crosses the NoC, so shortening the
/// consumer→producer path shortens the handoff critical path directly.
/// The load term (the same one [`LoadAware`] uses) keeps chains from
/// collapsing onto a single overloaded core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainAffine;

impl PlacementPolicy for ChainAffine {
    fn name(&self) -> &str {
        "chain-affine"
    }

    /// Without dependences the policy degrades to [`LoadAware`].
    fn assign(&self, sections: &[SectionSpan], chip: &ChipView) -> Vec<CoreId> {
        LoadAware.assign(sections, chip)
    }

    fn wants_dependences(&self) -> bool {
        true
    }

    fn assign_with_deps(
        &self,
        sections: &[SectionSpan],
        chip: &ChipView,
        deps: &SectionDeps,
    ) -> Vec<CoreId> {
        let cores = chip.cores;
        let capacity = chip.max_sections_per_core;
        let mut free_at = vec![0u64; cores];
        let mut hosted = vec![0usize; cores];
        let mut start_at: Vec<u64> = Vec::with_capacity(sections.len());
        let mut core_of: Vec<CoreId> = Vec::with_capacity(sections.len());

        for span in sections {
            let producers = deps.producers(span.id);
            // Estimated fetch-start time on candidate core `c` (the
            // LoadAware model: creator's fork, the creation message's NoC
            // crossing, and the core's queue).
            let start_on = |c: usize| -> u64 {
                let ready = match span.creator {
                    Some((SectionId(creator), fork_seq)) => {
                        let fork_offset =
                            fork_seq.saturating_sub(sections[creator].start) as u64 + 1;
                        let creator_core = core_of[creator];
                        start_at[creator] + fork_offset + chip.link_latency(creator_core, CoreId(c))
                    }
                    None => 0,
                };
                ready.max(free_at[c])
            };
            // The selection score adds the renaming round trips charged
            // from `c` to every remote producer's host core.
            let candidate = |c: usize| -> u64 {
                let comm: u64 = producers
                    .iter()
                    .map(|&(p, w)| 2 * w as u64 * chip.link_latency(core_of[p.0], CoreId(c)))
                    .sum();
                start_on(c) + comm
            };
            let pool: Vec<usize> = {
                let below: Vec<usize> = (0..cores).filter(|c| hosted[*c] < capacity).collect();
                if below.is_empty() {
                    (0..cores).collect()
                } else {
                    below
                }
            };
            let chosen = pool
                .into_iter()
                .min_by_key(|c| (candidate(*c) + span.len() as u64, *c))
                .expect("at least one core");
            // The queueing estimate excludes the communication charge:
            // the core is busy for the section's fetch span only.
            let begun = start_on(chosen);
            free_at[chosen] = begun + span.len() as u64;
            hosted[chosen] += 1;
            start_at.push(begun);
            core_of.push(CoreId(chosen));
        }
        core_of
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip(cores: usize) -> ChipView {
        ChipView {
            cores,
            max_sections_per_core: 8,
            topology: Topology::Crossbar { size: cores },
            noc: NocConfig {
                base_latency: 1,
                per_hop_latency: 1,
                link_bandwidth: None,
            },
        }
    }

    fn spans(sizes: &[usize]) -> Vec<SectionSpan> {
        let mut start = 0;
        sizes
            .iter()
            .enumerate()
            .map(|(i, len)| {
                let span = SectionSpan {
                    id: SectionId(i),
                    start,
                    end: start + len,
                    creator: if i == 0 {
                        None
                    } else {
                        Some((SectionId(0), 0))
                    },
                    start_ip: 0,
                };
                start += len;
                span
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_over_cores() {
        let assigned = Placement::RoundRobin.assign(&spans(&[4, 4, 4, 4]), &chip(2));
        assert_eq!(assigned, vec![CoreId(0), CoreId(1), CoreId(0), CoreId(1)]);
    }

    #[test]
    fn round_robin_respects_capacity_until_full() {
        let mut c = chip(2);
        c.max_sections_per_core = 1;
        let assigned = Placement::RoundRobin.assign(&spans(&[1, 1, 1]), &c);
        // Two sections fit; the third relaxes the limit at its preferred
        // core rather than failing.
        assert_eq!(assigned[0], CoreId(0));
        assert_eq!(assigned[1], CoreId(1));
        assert!(assigned[2].0 < 2);
    }

    #[test]
    fn least_loaded_balances_instruction_counts() {
        let assigned = Placement::LeastLoaded.assign(&spans(&[10, 1, 1, 1]), &chip(2));
        // The big first section claims core 0, the small rest pile on 1.
        assert_eq!(assigned[0], CoreId(0));
        assert!(assigned[1..].iter().all(|c| *c == CoreId(1)));
    }

    #[test]
    fn least_loaded_prefers_under_capacity_cores() {
        // Core 0 carries one huge section; with a capacity of 2 the small
        // sections must move to core 0 once core 1 is full, even though
        // core 1 has much less instruction load.
        let mut c = chip(2);
        c.max_sections_per_core = 2;
        let assigned = Placement::LeastLoaded.assign(&spans(&[10, 1, 1, 1]), &c);
        assert_eq!(
            assigned,
            vec![CoreId(0), CoreId(1), CoreId(1), CoreId(0)],
            "the fourth section must respect core 1's capacity"
        );
    }

    #[test]
    fn least_loaded_relaxes_capacity_only_when_the_chip_is_full() {
        let mut c = chip(2);
        c.max_sections_per_core = 1;
        let assigned = Placement::LeastLoaded.assign(&spans(&[4, 2, 2]), &c);
        // Two sections fit under the limit; the third relaxes it and goes
        // back to the least-loaded core.
        assert_eq!(assigned, vec![CoreId(0), CoreId(1), CoreId(1)]);
        let mut per_core = [0usize; 2];
        for core in &assigned {
            per_core[core.0] += 1;
        }
        assert_eq!(per_core.iter().sum::<usize>(), 3, "every section is placed");
    }

    #[test]
    fn load_aware_spreads_across_idle_cores() {
        let assigned = LoadAware.assign(&spans(&[8, 8, 8, 8]), &chip(4));
        let mut distinct: Vec<CoreId> = assigned.clone();
        distinct.sort();
        distinct.dedup();
        assert_eq!(
            distinct.len(),
            4,
            "equal sections on an idle chip spread out: {assigned:?}"
        );
    }

    #[test]
    fn load_aware_avoids_the_busy_creator_core() {
        // One very long section forks short ones early: the short ones
        // should pay the NoC hop to the idle core rather than queue for
        // ~100 cycles behind their creator.
        let assigned = LoadAware.assign(&spans(&[100, 2, 2, 2]), &chip(2));
        assert_eq!(assigned[0], CoreId(0));
        assert!(
            assigned[1..].iter().all(|c| *c == CoreId(1)),
            "{assigned:?}"
        );
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(Placement::RoundRobin.name(), "round-robin");
        assert_eq!(Placement::LeastLoaded.name(), "least-loaded");
        assert_eq!(LoadAware.name(), "load-aware");
        assert_eq!(ChainAffine.name(), "chain-affine");
    }

    use crate::section::SourceDep;

    fn record(seq: usize, section: usize, reg_sources: Vec<SourceDep>) -> crate::InstRecord {
        crate::InstRecord {
            seq,
            ip: 0,
            mnemonic: "movq",
            section: SectionId(section),
            index_in_section: 0,
            kind: parsecs_machine::TraceKind::Other,
            is_control: false,
            is_load: false,
            is_store: false,
            reg_sources,
            mem_sources: Vec::new(),
            writes: Vec::new(),
        }
    }

    fn remote_dep(producer: usize, producer_section: usize) -> SourceDep {
        SourceDep {
            location: parsecs_machine::Location::Flags,
            kind: SourceKind::Remote {
                producer,
                producer_section: SectionId(producer_section),
            },
        }
    }

    #[test]
    fn section_deps_count_remote_edges_per_producer() {
        let records = vec![
            record(0, 0, vec![]),
            record(1, 1, vec![remote_dep(0, 0), remote_dep(0, 0)]),
            record(2, 2, vec![remote_dep(1, 1), remote_dep(0, 0)]),
        ];
        let deps = SectionDeps::from_records(3, &records);
        assert!(deps.producers(SectionId(0)).is_empty());
        assert_eq!(deps.producers(SectionId(1)), &[(SectionId(0), 2)]);
        assert_eq!(
            deps.producers(SectionId(2)),
            &[(SectionId(0), 1), (SectionId(1), 1)]
        );
    }

    #[test]
    fn chain_affine_co_locates_a_chained_consumer_under_an_expensive_noc() {
        // Section 2 reads section 1's value heavily; with a costly link,
        // the round trips dominate the load estimate, so the consumer
        // must land on its producer's core.
        let mut c = chip(4);
        c.noc.base_latency = 50;
        c.noc.per_hop_latency = 50;
        let sections = spans(&[4, 4, 4]);
        let records = vec![record(
            8,
            2,
            (0..4).map(|_| remote_dep(4, 1)).collect::<Vec<_>>(),
        )];
        let deps = SectionDeps::from_records(3, &records);
        let assigned = ChainAffine.assign_with_deps(&sections, &c, &deps);
        assert_eq!(
            assigned[2], assigned[1],
            "the chained consumer shares its producer's core: {assigned:?}"
        );
    }

    #[test]
    fn chain_affine_without_deps_degrades_to_load_aware() {
        let sections = spans(&[100, 2, 2, 2]);
        assert_eq!(
            ChainAffine.assign(&sections, &chip(2)),
            LoadAware.assign(&sections, &chip(2))
        );
        assert!(ChainAffine.wants_dependences());
        assert!(!LoadAware.wants_dependences());
    }
}
