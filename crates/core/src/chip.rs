//! Chip-wide per-core state in struct-of-arrays layout.
//!
//! PR 5's profile of the 1024-core cells pointed at the old
//! `Vec<CoreState>` of per-core structs (each with its own heap-allocated
//! `VecDeque`): the fetch walk touched 1024 scattered cache lines per
//! cycle. [`ChipState`] stores each per-core field as one dense column
//! indexed by core id, so the dense walk streams a handful of arrays, and
//! the per-core ready queue becomes an intrusive linked list threaded
//! through a per-*section* `queue_next` column (a section sits in at most
//! one core's queue at a time, so one link per section suffices — no
//! allocation, no `VecDeque`).
//!
//! The columns are also what makes the cluster-parallel fetch walk
//! possible: [`ChipState::split`] hands out disjoint `&mut` column slices
//! per cluster ([`CoreView`]), which the scoped pool can walk
//! concurrently without any `unsafe`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::BuildHasherDefault;

use parsecs_trace::{AddrHasher, TraceArena};

use crate::{SectionId, SectionSpan};

/// Sentinel section id for "none" in the `u32` columns (`current`,
/// `stall_on`, the queue links). Valid ids stay below it: the arena's
/// column builder caps instruction (and therefore section) counts at
/// `u32` range.
pub(crate) const NO_SECTION: u32 = u32::MAX;

/// Sentinel for an empty `stall_on` slot (no in-place fetch stall).
pub(crate) const NO_STALL: u32 = u32::MAX;

/// Sentinel for "no outstanding wake-up event" in the `wake_at` column.
/// Simulated cycles are capped by the convergence guard far below it, so
/// it never collides with a real cycle.
pub(crate) const NO_WAKE: u64 = u64::MAX;

/// Per-core simulator state, one dense column per field (see the module
/// docs). Shared by both timing engines; the event engine's clusters walk
/// it through [`CoreView`] slices.
pub(crate) struct ChipState {
    /// Section currently owning each core's fetch stage (`NO_SECTION` =
    /// idle).
    pub(crate) current: Vec<u32>,
    /// Next trace index each core's fetch stage will fetch from
    /// `current`.
    pub(crate) next_seq: Vec<u32>,
    /// Trace index of the control instruction each core is stalled on in
    /// place (`NO_STALL` = not stalled).
    pub(crate) stall_on: Vec<u32>,
    /// Cycle of each core's outstanding wake-up event (`NO_WAKE` = none;
    /// event engine only). Calendar entries that no longer match are
    /// stale and skipped.
    pub(crate) wake_at: Vec<u64>,
    /// Whether each core is in its cluster's run list (event engine
    /// only).
    pub(crate) running: Vec<bool>,
    /// Total sections ever hosted (delivered) per core.
    pub(crate) sections_hosted: Vec<u32>,
    /// Head of each core's ready queue of delivered/requeued sections
    /// (`NO_SECTION` = empty).
    pub(crate) queue_head: Vec<u32>,
    /// Tail of each core's ready queue.
    pub(crate) queue_tail: Vec<u32>,
    /// Next link of the intrusive ready queues, indexed by *section* id:
    /// a section is in at most one queue at a time.
    pub(crate) queue_next: Vec<u32>,
}

impl ChipState {
    pub(crate) fn new(cores: usize, sections: usize) -> ChipState {
        ChipState {
            current: vec![NO_SECTION; cores],
            next_seq: vec![0; cores],
            stall_on: vec![NO_STALL; cores],
            wake_at: vec![NO_WAKE; cores],
            running: vec![false; cores],
            sections_hosted: vec![0; cores],
            queue_head: vec![NO_SECTION; cores],
            queue_tail: vec![NO_SECTION; cores],
            queue_next: vec![NO_SECTION; sections],
        }
    }

    /// Appends section `sid` to core `idx`'s ready queue.
    pub(crate) fn queue_push(&mut self, idx: usize, sid: u32) {
        self.queue_next[sid as usize] = NO_SECTION;
        if self.queue_tail[idx] == NO_SECTION {
            self.queue_head[idx] = sid;
        } else {
            self.queue_next[self.queue_tail[idx] as usize] = sid;
        }
        self.queue_tail[idx] = sid;
    }

    /// Pops the next ready section of core `idx`, if any.
    pub(crate) fn queue_pop(&mut self, idx: usize) -> Option<u32> {
        let head = self.queue_head[idx];
        if head == NO_SECTION {
            return None;
        }
        self.queue_head[idx] = self.queue_next[head as usize];
        if self.queue_head[idx] == NO_SECTION {
            self.queue_tail[idx] = NO_SECTION;
        }
        Some(head)
    }

    /// Splits the mutable columns into per-cluster [`CoreView`]s (one per
    /// entry of `sizes`, which must tile the core range) and returns the
    /// shared `queue_next` column alongside — the walk only reads queue
    /// links (pops mutate `queue_head`/`queue_tail`, both per-cluster;
    /// pushes happen in the sequential deliver/requeue phases).
    pub(crate) fn split(&mut self, sizes: &[usize]) -> (Vec<CoreView<'_>>, &[u32]) {
        // One pass, one allocation: this runs on every event-loop
        // iteration, so each column is carved with a rolling tail instead
        // of a per-column chunk vector.
        let mut current = self.current.as_mut_slice();
        let mut next_seq = self.next_seq.as_mut_slice();
        let mut stall_on = self.stall_on.as_mut_slice();
        let mut wake_at = self.wake_at.as_mut_slice();
        let mut running = self.running.as_mut_slice();
        let mut queue_head = self.queue_head.as_mut_slice();
        let mut queue_tail = self.queue_tail.as_mut_slice();
        let mut views = Vec::with_capacity(sizes.len());
        for &len in sizes {
            macro_rules! carve {
                ($col:ident) => {{
                    let (head, tail) = $col.split_at_mut(len);
                    $col = tail;
                    head
                }};
            }
            views.push(CoreView {
                current: carve!(current),
                next_seq: carve!(next_seq),
                stall_on: carve!(stall_on),
                wake_at: carve!(wake_at),
                running: carve!(running),
                queue_head: carve!(queue_head),
                queue_tail: carve!(queue_tail),
            });
        }
        debug_assert!(current.is_empty(), "cluster sizes tile the cores");
        (views, &self.queue_next)
    }

    /// The whole chip as a single [`CoreView`] — the single-cluster
    /// (sequential) engine's walk window, built without any allocation.
    pub(crate) fn view_all(&mut self) -> (CoreView<'_>, &[u32]) {
        (
            CoreView {
                current: &mut self.current,
                next_seq: &mut self.next_seq,
                stall_on: &mut self.stall_on,
                wake_at: &mut self.wake_at,
                running: &mut self.running,
                queue_head: &mut self.queue_head,
                queue_tail: &mut self.queue_tail,
            },
            &self.queue_next,
        )
    }
}

/// One cluster's disjoint window of the [`ChipState`] columns, indexed by
/// *local* core id (`0..cluster.len`).
pub(crate) struct CoreView<'a> {
    pub(crate) current: &'a mut [u32],
    pub(crate) next_seq: &'a mut [u32],
    pub(crate) stall_on: &'a mut [u32],
    pub(crate) wake_at: &'a mut [u64],
    pub(crate) running: &'a mut [bool],
    pub(crate) queue_head: &'a mut [u32],
    pub(crate) queue_tail: &'a mut [u32],
}

/// The in-order fetch-stall handoff state shared by both timing engines.
///
/// A fetch stall whose control instruction has a *known* completion cycle
/// waits in place (the release event is already modeled). A stall whose
/// completion is still unknown **parks**: the section leaves the fetch
/// slot, registers here keyed on the stalled instruction, and the core
/// goes on to its queued sections. When the completion is discovered, a
/// requeue event — ordered by `(cycle, core, section)` so both engines
/// replay it identically — returns the section to its core's ready queue
/// at the modeled release cycle (strictly after the completion, so the
/// resumed fetch never re-stalls on the same instruction).
pub(crate) struct StallTable {
    /// Core parked on each stalled trace index. A sparse map, not a
    /// per-instruction column: at most one section per core is parked at
    /// any moment, so the table holds at most `cores` entries — where the
    /// old `Vec<usize>` indexed by trace position cost 8 bytes per
    /// instruction (800 MB of a 100M-instruction run, almost all of it
    /// sentinels).
    parked_core: HashMap<u64, u32, BuildHasherDefault<AddrHasher>>,
    /// Per-section fetch resume point (`usize::MAX` = section start).
    resume_at: Vec<usize>,
    /// Pending `(cycle, core, section)` requeue events, earliest first.
    requeue: BinaryHeap<Reverse<(u64, usize, usize)>>,
}

impl StallTable {
    pub(crate) fn new(sections: usize) -> StallTable {
        StallTable {
            parked_core: HashMap::default(),
            resume_at: vec![usize::MAX; sections],
            requeue: BinaryHeap::new(),
        }
    }

    /// Number of currently parked sections.
    pub(crate) fn parked(&self) -> usize {
        self.parked_core.len()
    }

    /// The per-section resume points, for the fetch walk's read-only view
    /// (`usize::MAX` = section start; the walk defers the clear through
    /// [`StallTable::clear_resume`]).
    pub(crate) fn resume_points(&self) -> &[usize] {
        &self.resume_at
    }

    /// Resets section `sid`'s resume point after the walk consumed it.
    pub(crate) fn clear_resume(&mut self, sid: usize) {
        self.resume_at[sid] = usize::MAX;
    }

    /// Makes `sid` the core's current section, resuming a parked section
    /// at its saved fetch point and a fresh one at its start (the
    /// reference loop's direct path; the event engine's walk does the
    /// same through its buffered [`CoreView`]).
    pub(crate) fn begin_section(
        &mut self,
        chip: &mut ChipState,
        idx: usize,
        sections: &[SectionSpan],
        sid: u32,
    ) {
        chip.current[idx] = sid;
        chip.next_seq[idx] = match std::mem::replace(&mut self.resume_at[sid as usize], usize::MAX)
        {
            usize::MAX => sections[sid as usize].start as u32,
            resume => resume as u32,
        };
    }

    /// Parks the core's current section on its stalled control
    /// instruction `seq`: the section leaves the fetch slot and will be
    /// requeued when `seq`'s completion is discovered.
    pub(crate) fn park(&mut self, idx: usize, chip: &mut ChipState, seq: usize) {
        let sid = chip.current[idx];
        debug_assert_ne!(sid, NO_SECTION, "a stalled core runs a section");
        chip.current[idx] = NO_SECTION;
        debug_assert_eq!(chip.stall_on[idx], seq as u32);
        debug_assert_eq!(chip.next_seq[idx] as usize, seq + 1);
        chip.stall_on[idx] = NO_STALL;
        self.resume_at[sid as usize] = chip.next_seq[idx] as usize;
        let previous = self.parked_core.insert(seq as u64, idx as u32);
        debug_assert!(previous.is_none(), "one section parks per instruction");
    }

    /// If a section is parked on `seq`, removes it from the park list and
    /// returns its core.
    pub(crate) fn unpark(&mut self, seq: usize) -> Option<usize> {
        self.parked_core
            .remove(&(seq as u64))
            .map(|idx| idx as usize)
    }

    /// Schedules section `sid` to rejoin core `idx`'s ready queue at
    /// cycle `at`.
    pub(crate) fn push_requeue(&mut self, at: u64, idx: usize, sid: SectionId) {
        self.requeue.push(Reverse((at, idx, sid.0)));
    }

    /// The earliest pending requeue cycle.
    pub(crate) fn next_requeue(&self) -> Option<u64> {
        self.requeue.peek().map(|&Reverse((at, _, _))| at)
    }

    /// Whether any requeue event is pending.
    pub(crate) fn pending_requeues(&self) -> bool {
        !self.requeue.is_empty()
    }

    /// Pops the next requeue event due at or before `cycle`.
    pub(crate) fn pop_due(&mut self, cycle: u64) -> Option<(usize, SectionId)> {
        match self.requeue.peek() {
            Some(&Reverse((at, idx, sid))) if at <= cycle => {
                debug_assert_eq!(at, cycle, "requeue events are never skipped");
                self.requeue.pop();
                Some((idx, SectionId(sid)))
            }
            _ => None,
        }
    }

    /// The deadlock *detector*'s escape: requeues every parked section at
    /// cycle `at` with its stall abandoned (the branch resolves out of
    /// order in the execute stage) and returns how many were released.
    /// Well-formed traces never reach this — any firing is surfaced as an
    /// error by the driver layer.
    pub(crate) fn force_release(&mut self, at: u64, arena: &TraceArena) -> u64 {
        // Map iteration order is arbitrary, but the requeue heap totally
        // orders its `(cycle, core, section)` events, so the releases
        // replay deterministically regardless.
        let mut released = 0u64;
        for (seq, idx) in self.parked_core.drain() {
            self.requeue
                .push(Reverse((at, idx as usize, arena.section(seq as usize).0)));
            released += 1;
        }
        released
    }
}
