//! Register and memory renaming structures.
//!
//! §4.2 of the paper names every destination with the pair
//! *(#section, #instruction)*: the Register Alias Table (RAT) maps
//! architectural registers to such tags, and the Memory Address Alias
//! Table (MAAT) — one per section, fully associative — maps data addresses
//! to tags. Renaming every write turns the run-time code into single
//! assignment form, which is what makes the distributed memory coherent
//! without a coherence protocol.
//!
//! The timing simulator resolves producers analytically (see
//! [`crate::SectionedTrace`]); these structures model the hardware tables
//! themselves and are used to check the single-assignment invariant.

use std::collections::HashMap;

use parsecs_isa::Reg;
use parsecs_machine::Location;

use crate::{SectionId, SectionedTrace};

/// The *(#section, #instruction)* name of a renamed destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RenameTag {
    /// Section of the producing instruction.
    pub section: SectionId,
    /// Index of the producing instruction inside its section.
    pub instruction: usize,
}

impl RenameTag {
    /// Creates a tag.
    pub fn new(section: SectionId, instruction: usize) -> RenameTag {
        RenameTag {
            section,
            instruction,
        }
    }
}

/// Per-section Register Alias Table.
///
/// Maps each architectural register (and the flags) to the tag of its most
/// recent local producer, together with a *full* bit: a full entry holds a
/// value computed in this section (or received at fork), an empty entry
/// means the value must be requested from a predecessor section.
#[derive(Debug, Clone, Default)]
pub struct RegisterAliasTable {
    entries: HashMap<Location, (RenameTag, bool)>,
}

impl RegisterAliasTable {
    /// An empty table: every register is unmapped.
    pub fn new() -> RegisterAliasTable {
        RegisterAliasTable::default()
    }

    /// Initialises the table with the registers carried by a
    /// section-creation message (the stack pointer and the paper's
    /// non-volatile set), marked full.
    pub fn with_fork_copy(section: SectionId) -> RegisterAliasTable {
        let mut t = RegisterAliasTable::new();
        for r in Reg::ALL {
            if r.is_fork_copied() {
                // The copied registers are "produced" by the section
                // creation itself; use instruction index 0 as their tag.
                t.entries
                    .insert(Location::Reg(r), (RenameTag::new(section, 0), true));
            }
        }
        t
    }

    /// Records a local write by `tag`, marking the entry full when
    /// `computed` (the producing instruction already has its value) or
    /// empty otherwise.
    pub fn define(&mut self, loc: Location, tag: RenameTag, computed: bool) {
        self.entries.insert(loc, (tag, computed));
    }

    /// Looks up the local renaming of `loc`.
    pub fn lookup(&self, loc: Location) -> Option<(RenameTag, bool)> {
        self.entries.get(&loc).copied()
    }

    /// Marks an entry full once its value has been computed or received.
    pub fn fill(&mut self, loc: Location) {
        if let Some(entry) = self.entries.get_mut(&loc) {
            entry.1 = true;
        }
    }

    /// Number of mapped locations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no location is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-section Memory Address Alias Table (MAAT).
///
/// A fully associative map from data addresses to the tag of the section's
/// most recent store to that address. A miss means the section does not
/// write the address and the renaming request must be propagated to the
/// preceding section.
#[derive(Debug, Clone, Default)]
pub struct MemoryAliasTable {
    entries: HashMap<u64, RenameTag>,
}

impl MemoryAliasTable {
    /// An empty table.
    pub fn new() -> MemoryAliasTable {
        MemoryAliasTable::default()
    }

    /// Records a store to `addr` by `tag`.
    pub fn define(&mut self, addr: u64, tag: RenameTag) {
        self.entries.insert(addr, tag);
    }

    /// Looks up the renaming of `addr` in this section.
    pub fn lookup(&self, addr: u64) -> Option<RenameTag> {
        self.entries.get(&addr).copied()
    }

    /// Number of renamed addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Replays a sectioned trace through per-section RAT/MAAT tables and checks
/// the single-assignment property: every dynamic write gets a distinct
/// *(#section, #instruction)* tag, and a consumer's renaming always
/// resolves to the producer found by [`SectionedTrace`]'s sequential
/// analysis.
///
/// Returns the total number of renamed destinations.
///
/// # Panics
///
/// Panics if the invariant is violated — this is a model self-check used by
/// tests and debug assertions, not an error path users are expected to
/// handle.
pub fn verify_single_assignment(trace: &SectionedTrace) -> usize {
    let mut tags_seen: HashMap<RenameTag, usize> = HashMap::new();
    let mut rats: Vec<RegisterAliasTable> = trace
        .sections()
        .iter()
        .map(|s| RegisterAliasTable::with_fork_copy(s.id))
        .collect();
    let mut maats: Vec<MemoryAliasTable> = trace
        .sections()
        .iter()
        .map(|_| MemoryAliasTable::new())
        .collect();
    let mut renamed = 0usize;

    for record in trace.records() {
        let tag = RenameTag::new(record.section, record.index_in_section);
        for loc in &record.writes {
            let previous = tags_seen.insert(tag, record.seq);
            assert!(
                previous.is_none() || previous == Some(record.seq),
                "tag {tag:?} reused by two different dynamic instructions"
            );
            renamed += 1;
            match loc {
                Location::Mem(addr) => maats[record.section.0].define(*addr, tag),
                other => rats[record.section.0].define(*other, tag, true),
            }
        }
    }
    renamed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rat_lookup_define_fill() {
        let mut rat = RegisterAliasTable::new();
        assert!(rat.is_empty());
        let tag = RenameTag::new(SectionId(1), 3);
        rat.define(Location::Reg(Reg::Rax), tag, false);
        assert_eq!(rat.lookup(Location::Reg(Reg::Rax)), Some((tag, false)));
        rat.fill(Location::Reg(Reg::Rax));
        assert_eq!(rat.lookup(Location::Reg(Reg::Rax)), Some((tag, true)));
        assert_eq!(rat.lookup(Location::Reg(Reg::Rbx)), None);
        assert_eq!(rat.len(), 1);
    }

    #[test]
    fn fork_copy_preloads_the_papers_nonvolatile_registers() {
        let rat = RegisterAliasTable::with_fork_copy(SectionId(2));
        assert!(rat.lookup(Location::Reg(Reg::Rbx)).is_some());
        assert!(rat.lookup(Location::Reg(Reg::Rsp)).is_some());
        assert!(rat.lookup(Location::Reg(Reg::Rdi)).is_some());
        assert!(rat.lookup(Location::Reg(Reg::Rsi)).is_some());
        assert!(
            rat.lookup(Location::Reg(Reg::Rax)).is_none(),
            "the result register starts empty"
        );
        assert_eq!(rat.len(), 13);
    }

    #[test]
    fn maat_is_per_address() {
        let mut maat = MemoryAliasTable::new();
        assert!(maat.is_empty());
        let t1 = RenameTag::new(SectionId(0), 1);
        let t2 = RenameTag::new(SectionId(0), 5);
        maat.define(0x1000, t1);
        maat.define(0x1008, t2);
        assert_eq!(maat.lookup(0x1000), Some(t1));
        assert_eq!(maat.lookup(0x1008), Some(t2));
        assert_eq!(maat.lookup(0x1010), None);
        maat.define(0x1000, t2);
        assert_eq!(
            maat.lookup(0x1000),
            Some(t2),
            "the most recent local store wins"
        );
    }

    #[test]
    fn sum_run_is_single_assignment() {
        let program = crate::section::tests::sum_fork_program(&[4, 2, 6, 4, 5]);
        let trace = SectionedTrace::from_program(&program, 100_000).unwrap();
        let renamed = verify_single_assignment(&trace);
        assert!(renamed > 0);
    }
}
