//! Simulation errors.

use std::error::Error;
use std::fmt;

use parsecs_machine::MachineError;

/// Errors produced while preparing or running a many-core simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The functional pre-execution of the program failed.
    Machine(MachineError),
    /// The configuration is invalid (e.g. zero cores).
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Machine(e) => write!(f, "functional execution failed: {e}"),
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Machine(e) => Some(e),
            SimError::Config(_) => None,
        }
    }
}

impl From<MachineError> for SimError {
    fn from(e: MachineError) -> SimError {
        SimError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::Config("no cores".into());
        assert!(e.to_string().contains("no cores"));
        let e: SimError = MachineError::OutOfFuel { steps: 5 }.into();
        assert!(e.to_string().contains("5"));
    }
}
