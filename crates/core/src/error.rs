//! Simulation errors.

use std::error::Error;
use std::fmt;

use parsecs_check::CheckReport;
use parsecs_machine::MachineError;
use parsecs_trace::TraceError;

/// Errors produced while preparing or running a many-core simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The functional pre-execution of the program failed.
    Machine(MachineError),
    /// The streaming trace pipeline failed — in particular
    /// [`TraceError::CapacityExceeded`] when a 100M+-instruction run
    /// outgrows the arena's packed `u32` columns (reported as an error
    /// instead of aborting mid-run).
    Trace(TraceError),
    /// The configuration is invalid (e.g. zero cores).
    Config(String),
    /// The pre-simulation static analysis ([`crate::SimConfig::validate`])
    /// found the trace arena structurally invalid; the full report with
    /// the typed violations is attached.
    Invariant(Box<CheckReport>),
    /// The timing model broke down: the engine stopped making progress
    /// (or an instruction came out of it unresolved) on a trace the
    /// structural checks accept. Always a simulator bug, never a property
    /// of the program.
    Diverged {
        /// What stopped: `"deadlocked with no pending event"`,
        /// `"did not converge"` or
        /// `"left an instruction unresolved"`.
        reason: &'static str,
        /// Simulated cycle at which the engine gave up.
        cycle: u64,
        /// Instructions whose timing had been resolved by then.
        resolved: u64,
        /// Instructions in the trace.
        instructions: u64,
    },
}

/// Why a threaded run ([`crate::SimConfig::threads`] above one) withheld
/// the parallel fork and ran sequentially instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FallbackReason {
    /// The static race certifier did not return
    /// [`crate::DrainSafety::Certified`] for the arena (violations, or a
    /// conflicting completion round).
    DrainUncertified,
    /// The walk certifier did not return
    /// [`crate::WalkSafety::Certified`] for the concrete cluster
    /// partition.
    WalkUncertified,
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackReason::DrainUncertified => write!(f, "drain uncertified"),
            FallbackReason::WalkUncertified => write!(f, "walk uncertified"),
        }
    }
}

/// The typed record of a withheld parallel fork: a run that was asked to
/// fork (`threads > 1`) but could not get both static certificates runs
/// sequentially and carries this on [`crate::SimResult::fork_fallback`]
/// instead of falling back silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForkFallback {
    /// The first certificate that was withheld (drain is checked before
    /// walk).
    pub reason: FallbackReason,
}

impl fmt::Display for ForkFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sequential fallback: {}", self.reason)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Machine(e) => write!(f, "functional execution failed: {e}"),
            SimError::Trace(e) => write!(f, "trace pipeline failed: {e}"),
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Invariant(report) => write!(f, "trace invariants violated: {report}"),
            SimError::Diverged {
                reason,
                cycle,
                resolved,
                instructions,
            } => write!(
                f,
                "simulation {reason} at cycle {cycle} \
                 ({resolved} of {instructions} instructions resolved)"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Machine(e) => Some(e),
            SimError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for SimError {
    fn from(e: MachineError) -> SimError {
        SimError::Machine(e)
    }
}

/// A machine failure inside the pipeline stays a [`SimError::Machine`]
/// (callers match on fuel exhaustion there); only genuine pipeline
/// conditions surface as [`SimError::Trace`].
impl From<TraceError> for SimError {
    fn from(e: TraceError) -> SimError {
        match e {
            TraceError::Machine(e) => SimError::Machine(e),
            other => SimError::Trace(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::Config("no cores".into());
        assert!(e.to_string().contains("no cores"));
        let e: SimError = MachineError::OutOfFuel { steps: 5 }.into();
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn trace_errors_convert_preserving_machine_causes() {
        // A machine failure wrapped by the pipeline unwraps back to
        // SimError::Machine...
        let e: SimError = TraceError::Machine(MachineError::OutOfFuel { steps: 7 }).into();
        assert_eq!(e, SimError::Machine(MachineError::OutOfFuel { steps: 7 }));
        // ...while a capacity overflow stays a typed trace error.
        let e: SimError = TraceError::CapacityExceeded {
            resource: "dependences",
            limit: 42,
        }
        .into();
        assert!(matches!(e, SimError::Trace(_)));
        assert!(e.to_string().contains("capacity"));
    }

    #[test]
    fn diverged_reports_reason_and_progress() {
        let e = SimError::Diverged {
            reason: "did not converge",
            cycle: 99,
            resolved: 3,
            instructions: 7,
        };
        let s = e.to_string();
        assert!(s.contains("did not converge"), "{s}");
        assert!(s.contains("cycle 99"), "{s}");
        assert!(s.contains("3 of 7"), "{s}");
        assert!(e.source().is_none());
    }
}
