//! Per-instruction stage timings and aggregate statistics.

use std::fmt::Write as _;

use parsecs_noc::{CoreId, NocStats};
use parsecs_obs::CoreBreakdown;

use crate::{SectionId, SimResult};

/// The cycle at which one dynamic instruction is handled by each pipeline
/// stage — one row of the paper's Figure 10 tables.
///
/// The six columns follow the paper's naming: `fd` (fetch-decode), `rr`
/// (register-rename), `ew` (execute-write-back), `ar` (address-rename),
/// `ma` (memory-access) and `ret` (retire). `ar`/`ma` are `None` for
/// instructions that do not access data memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstTiming {
    /// Position in the sequential trace.
    pub seq: usize,
    /// Position within the section (0-based; the paper writes `s-i` with
    /// `i` 1-based — see [`InstTiming::name`]).
    pub index_in_section: usize,
    /// Static instruction index.
    pub ip: usize,
    /// Mnemonic.
    pub mnemonic: &'static str,
    /// Section of the instruction.
    pub section: SectionId,
    /// Core hosting that section.
    pub core: CoreId,
    /// Fetch-decode cycle.
    pub fd: u64,
    /// Register-rename cycle.
    pub rr: u64,
    /// Execute / write-back cycle (equals `fd` when the instruction is
    /// computed in the fetch stage, as the paper's design does for simple
    /// in-order-computable instructions).
    pub ew: u64,
    /// Address-rename cycle (memory instructions only).
    pub ar: Option<u64>,
    /// Memory-access cycle (memory instructions only).
    pub ma: Option<u64>,
    /// Retirement cycle.
    pub ret: u64,
}

impl InstTiming {
    /// The paper's `s-i` name of the instruction (1-based), e.g. `"2-13"`.
    /// Derived on demand — a simulation of millions of instructions does
    /// not pay for millions of row-label allocations.
    pub fn name(&self) -> String {
        format!("{}-{}", self.section.0 + 1, self.index_in_section + 1)
    }

    /// The cycle at which the instruction's result is available to
    /// consumers.
    pub fn completion(&self) -> u64 {
        self.ma.unwrap_or(self.ew)
    }
}

/// Aggregate statistics of one many-core simulation.
///
/// Every field is accumulated **streaming** during the simulation (the
/// resolver's `max_fd`/`max_ret` accumulators, the renaming counters,
/// the NoC's own counters), never derived from the per-instruction stage
/// table — so a stats-only run ([`crate::SimConfig::record_timings`]
/// off) reports statistics bit-identical to a recording run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Number of dynamic instructions simulated.
    pub instructions: u64,
    /// Number of sections.
    pub sections: usize,
    /// Number of distinct cores that hosted at least one section.
    ///
    /// This counts *hosting* cores only; the per-core
    /// [`SimStats::attribution`] table covers **every** core of the
    /// configured chip (its length is the chip's core count), so cores
    /// that never host a section still contribute their all-idle rows to
    /// [`SimStats::occupancy`] — chip-wide occupancy stays well-defined
    /// at 1024 cores instead of silently renormalizing to the used
    /// subset.
    pub cores_used: usize,
    /// Cycle at which the last instruction was fetched.
    pub fetch_cycles: u64,
    /// Cycle at which the last instruction retired.
    pub total_cycles: u64,
    /// `instructions / fetch_cycles` — the paper's headline fetch
    /// parallelism metric (§5).
    pub fetch_ipc: f64,
    /// `instructions / total_cycles`.
    pub retire_ipc: f64,
    /// Renaming requests served by a remote section (register sources).
    pub remote_register_requests: u64,
    /// Renaming requests served by a remote section (memory sources).
    pub remote_memory_requests: u64,
    /// Register sources satisfied by the fork-copied registers.
    pub fork_copied_sources: u64,
    /// Memory sources served by the loader / data memory hierarchy.
    pub dmh_accesses: u64,
    /// Times the deadlock *detector* forcibly released a stalled fetch
    /// stage (one count per section released). Under the in-order
    /// fetch-stall handoff model a stall with an unknown release parks
    /// its section and is requeued by an explicit wake event, so every
    /// well-formed trace completes with this at zero — provably: every
    /// stalled control instruction waits only on earlier-trace producers,
    /// which the freed fetch slot keeps fetching. Any firing therefore
    /// flags a malformed trace (or a simulator bug) and makes the
    /// reported timings untrustworthy; the driver layer surfaces it as
    /// `DriverError::Deadlock` instead of producing a report.
    pub forced_stall_releases: u64,
    /// Largest number of sections hosted by a single core.
    pub peak_sections_per_core: usize,
    /// Bytes held by the [`parsecs_trace::TraceArena`] the run was
    /// simulated from (allocated capacity of every column — the
    /// functional front-end's resident footprint).
    pub trace_arena_bytes: u64,
    /// Statistics of the underlying NoC model.
    pub noc: NocStats,
    /// Exact per-core cycle attribution: one additive busy /
    /// stalled-by-cause / parked / idle breakdown per *configured* core
    /// (not just hosting cores), each summing to
    /// [`SimStats::total_cycles`]. Accumulated always-on from the
    /// deterministic section/stall event stream, so it is part of the
    /// engines' bit-identity contract (see [`parsecs_obs::attribution`]).
    pub attribution: Vec<CoreBreakdown>,
}

impl SimStats {
    /// [`SimStats::trace_arena_bytes`] per simulated instruction.
    pub fn trace_bytes_per_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.trace_arena_bytes as f64 / self.instructions as f64
        }
    }

    /// Chip-wide fetch-slot occupancy in `[0, 1]`: the busy fraction of
    /// the whole chip's cycle budget, `Σ busy / (cores × total_cycles)`,
    /// over **all** configured cores ([`SimStats::attribution`] is the
    /// denominator, not [`SimStats::cores_used`]). 0.0 on an empty run.
    pub fn occupancy(&self) -> f64 {
        let budget = self.attribution.len() as u64 * self.total_cycles;
        if budget == 0 {
            return 0.0;
        }
        let busy: u64 = self.attribution.iter().map(|b| b.busy).sum();
        busy as f64 / budget as f64
    }
}

/// Formats the per-core timing tables in the layout of the paper's
/// Figure 10: one table per core, one row per instruction, the six stage
/// columns `fd rr ew ar ma ret`. A stats-only run has no stage rows, so
/// its table is empty.
pub fn format_figure10(result: &SimResult) -> String {
    let mut out = String::new();
    let mut cores: Vec<CoreId> = result.timings.iter().map(|t| t.core).collect();
    cores.sort();
    cores.dedup();
    for core in cores {
        let _ = writeln!(out, "{core} pipeline");
        let _ = writeln!(
            out,
            "{:>6} {:>22} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
            "insn", "mnemonic", "fd", "rr", "ew", "ar", "ma", "ret"
        );
        for t in result.timings.iter().filter(|t| t.core == core) {
            let ar = t.ar.map(|c| c.to_string()).unwrap_or_default();
            let ma = t.ma.map(|c| c.to_string()).unwrap_or_default();
            let _ = writeln!(
                out,
                "{:>6} {:>22} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
                t.name(),
                t.mnemonic,
                t.fd,
                t.rr,
                t.ew,
                ar,
                ma,
                t.ret
            );
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_prefers_memory_access() {
        let mut t = InstTiming {
            seq: 0,
            index_in_section: 0,
            ip: 0,
            mnemonic: "movq",
            section: SectionId(0),
            core: CoreId(0),
            fd: 1,
            rr: 2,
            ew: 3,
            ar: None,
            ma: None,
            ret: 4,
        };
        assert_eq!(t.completion(), 3);
        assert_eq!(t.name(), "1-1");
        t.ar = Some(4);
        t.ma = Some(7);
        assert_eq!(t.completion(), 7);
    }
}
