//! Section splitting and dependence resolution.
//!
//! A *section* (§4.1 of the paper) is a run of dynamically contiguous
//! instructions: it starts when a `fork` creates it and ends at the first
//! `endfork` it reaches. Control-flow instructions do not end a section —
//! the same section continues through jumps, calls and the callee path of
//! its own forks. Sections are **totally ordered**; concatenating them in
//! that order rebuilds the sequential trace of the run, which is what lets
//! renaming match every consumer with the closest preceding producer.

use std::collections::HashMap;

use parsecs_isa::Program;
use parsecs_machine::{Location, Machine, MachineError, Trace, TraceKind};
use parsecs_trace::{PackedDep, TraceArena};

// The section and dependence vocabulary moved to `parsecs-trace` (the
// streaming pipeline produces it, this crate consumes it); re-exported
// here so downstream paths are unchanged.
pub use parsecs_trace::{SectionId, SectionSpan, SourceDep, SourceKind};

/// One dynamic instruction annotated with its section and dependences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstRecord {
    /// Position in the sequential trace (and in the concatenated section
    /// order — they are the same).
    pub seq: usize,
    /// Static instruction index.
    pub ip: usize,
    /// Mnemonic, for display.
    pub mnemonic: &'static str,
    /// The section this instruction belongs to.
    pub section: SectionId,
    /// Position within the section (0-based; the paper writes `s-i` with
    /// `i` 1-based).
    pub index_in_section: usize,
    /// Kind (fork, endfork, call, ret, halt or other).
    pub kind: TraceKind,
    /// Whether this is a control-flow instruction.
    pub is_control: bool,
    /// Register and flags sources, needed when the instruction executes.
    pub reg_sources: Vec<SourceDep>,
    /// Memory-word sources, needed at the memory-access stage.
    pub mem_sources: Vec<SourceDep>,
    /// Locations written.
    pub writes: Vec<Location>,
    /// Whether the instruction loads from data memory.
    pub is_load: bool,
    /// Whether the instruction stores to data memory.
    pub is_store: bool,
}

impl InstRecord {
    /// The paper's `s-i` name of the instruction (1-based), e.g. `"2-13"`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.section.0 + 1, self.index_in_section + 1)
    }
}

/// The sectioned, dependence-annotated trace of one program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionedTrace {
    records: Vec<InstRecord>,
    sections: Vec<SectionSpan>,
    outputs: Vec<u64>,
}

impl SectionedTrace {
    /// Runs `program` functionally (with the reference machine's
    /// depth-first fork semantics), splits the trace into sections and
    /// resolves every source to its producer.
    ///
    /// # Errors
    ///
    /// Returns an error if the functional execution fails or does not halt
    /// within `fuel` instructions.
    pub fn from_program(program: &Program, fuel: u64) -> Result<SectionedTrace, MachineError> {
        let mut machine = Machine::load(program)?;
        let (outcome, trace) = machine.run_traced(fuel)?;
        Ok(SectionedTrace::from_trace(&trace, outcome.outputs))
    }

    /// Splits an existing trace (obtained from [`Machine::run_traced`])
    /// into sections.
    pub fn from_trace(trace: &Trace, outputs: Vec<u64>) -> SectionedTrace {
        let events = trace.events();
        let mut sections: Vec<SectionSpan> = Vec::new();
        let mut records: Vec<InstRecord> = Vec::with_capacity(events.len());

        // --- pass 1: section boundaries -------------------------------
        // The reference machine's depth-first order visits sections exactly
        // in their total order, each as one contiguous range.
        let mut pending: Vec<(SectionId, usize)> = Vec::new();
        let mut current_start = 0usize;
        let mut current_creator: Option<(SectionId, usize)> = None;
        let mut section_of: Vec<SectionId> = vec![SectionId(0); events.len()];

        for (i, event) in events.iter().enumerate() {
            let current_id = SectionId(sections.len());
            section_of[i] = current_id;
            match event.kind {
                TraceKind::Fork => {
                    pending.push((current_id, i));
                }
                TraceKind::EndFork | TraceKind::Halt => {
                    sections.push(SectionSpan {
                        id: current_id,
                        start: current_start,
                        end: i + 1,
                        creator: current_creator,
                        start_ip: events[current_start].ip,
                    });
                    current_start = i + 1;
                    current_creator = match event.kind {
                        TraceKind::EndFork => pending.pop(),
                        _ => None,
                    };
                    if current_creator.is_none() && event.kind == TraceKind::Halt {
                        // A halt ends the whole run; anything still pending
                        // was functionally executed before the halt.
                        break;
                    }
                }
                _ => {}
            }
        }
        // Close a trailing section if the trace ended without a terminator
        // (does not happen for halting programs, kept for robustness).
        if current_start < events.len()
            && sections.last().map(|s| s.end).unwrap_or(0) < events.len()
        {
            sections.push(SectionSpan {
                id: SectionId(sections.len()),
                start: current_start,
                end: events.len(),
                creator: current_creator,
                start_ip: events[current_start].ip,
            });
        }

        // --- pass 2: dependence resolution -----------------------------
        let creator_fork_of = |id: SectionId| -> Option<usize> {
            sections
                .get(id.0)
                .and_then(|s| s.creator.map(|(_, seq)| seq))
        };
        let mut last_writer: HashMap<Location, usize> = HashMap::new();

        for (i, event) in events.iter().enumerate() {
            if i >= sections.last().map(|s| s.end).unwrap_or(0) {
                break;
            }
            let section = section_of[i];
            let span = &sections[section.0];
            let mut reg_sources = Vec::new();
            let mut mem_sources = Vec::new();
            for loc in &event.reads {
                let kind = match last_writer.get(loc) {
                    Some(&producer) => {
                        let producer_section = section_of[producer];
                        if producer_section == section {
                            SourceKind::Local { producer }
                        } else {
                            // The stack pointer and the paper's non-volatile
                            // registers are copied into the section-creation
                            // message, so a forked section reads them from
                            // its own register file — no renaming request is
                            // sent, and the value is the fork-time value
                            // (which is also what the reference machine's
                            // depth-first semantics restores at `endfork`).
                            let copied = match loc {
                                Location::Reg(r) => r.is_fork_copied(),
                                _ => false,
                            };
                            if copied && creator_fork_of(section).is_some() {
                                SourceKind::ForkCopy
                            } else {
                                SourceKind::Remote {
                                    producer,
                                    producer_section,
                                }
                            }
                        }
                    }
                    None => match loc {
                        Location::Mem(_) => SourceKind::InitialMemory,
                        _ => SourceKind::InitialRegister,
                    },
                };
                let dep = SourceDep {
                    location: *loc,
                    kind,
                };
                if loc.is_mem() {
                    mem_sources.push(dep);
                } else {
                    reg_sources.push(dep);
                }
            }
            records.push(InstRecord {
                seq: i,
                ip: event.ip,
                mnemonic: event.mnemonic,
                section,
                index_in_section: i - span.start,
                kind: event.kind,
                is_control: event.is_control,
                reg_sources,
                mem_sources,
                writes: event.writes.clone(),
                is_load: event.reads.iter().any(Location::is_mem),
                is_store: event.writes.iter().any(Location::is_mem),
            });
            for loc in &event.writes {
                last_writer.insert(*loc, i);
            }
        }

        SectionedTrace {
            records,
            sections,
            outputs,
        }
    }

    /// Converts the trace into the flat [`TraceArena`] representation the
    /// timing engines consume (no re-resolution — the records already
    /// carry every dependence).
    ///
    /// New code should build the arena directly through the streaming
    /// pipeline ([`TraceArena::from_program`]); this bridge exists so
    /// callers holding a `SectionedTrace` can still reach the simulator.
    pub fn to_arena(&self) -> TraceArena {
        let mut arena = TraceArena::new();
        for record in &self.records {
            arena.push_record(
                record.ip,
                record.mnemonic,
                record.section,
                record.kind,
                record.is_control,
                &record.reg_sources,
                &record.mem_sources,
                &record.writes,
            );
        }
        for span in &self.sections {
            arena.push_section(span.clone());
        }
        arena.set_outputs(self.outputs.clone());
        arena.shrink_to_fit();
        arena
    }

    /// Materialises the record-per-instruction view of an arena — the
    /// inverse of [`SectionedTrace::to_arena`], used by differential tests
    /// and by consumers of the legacy [`InstRecord`] shape. A *lean*
    /// arena ([`TraceArena::records_writes`] `false`) yields records with
    /// empty `writes` — lean arenas exist for simulation, which never
    /// reads them, not for bridging back to records.
    pub fn from_arena(arena: &TraceArena) -> SectionedTrace {
        let records = (0..arena.len())
            .map(|seq| InstRecord {
                seq,
                ip: arena.ip(seq),
                mnemonic: arena.mnemonic(seq),
                section: arena.section(seq),
                index_in_section: arena.index_in_section(seq),
                kind: arena.kind(seq),
                is_control: arena.is_control(seq),
                reg_sources: arena.reg_sources(seq).iter().map(PackedDep::dep).collect(),
                mem_sources: arena.mem_sources(seq).iter().map(PackedDep::dep).collect(),
                writes: arena.written(seq).collect(),
                is_load: arena.is_load(seq),
                is_store: arena.is_store(seq),
            })
            .collect();
        SectionedTrace {
            records,
            sections: arena.sections().to_vec(),
            outputs: arena.outputs().to_vec(),
        }
    }

    /// The dependence-annotated dynamic instructions, in sequential order.
    pub fn records(&self) -> &[InstRecord] {
        &self.records
    }

    /// The sections, in total order.
    pub fn sections(&self) -> &[SectionSpan] {
        &self.sections
    }

    /// The values emitted by `out` during the functional run.
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The number of instructions of each section, in total order.
    pub fn section_sizes(&self) -> Vec<usize> {
        self.sections.iter().map(SectionSpan::len).collect()
    }

    /// The records of one section.
    pub fn section_records(&self, id: SectionId) -> &[InstRecord] {
        let span = &self.sections[id.0];
        &self.records[span.start..span.end]
    }

    /// Size of the largest section.
    pub fn longest_section(&self) -> usize {
        self.section_sizes().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use parsecs_isa::Reg;

    /// The paper's running example: Figure 5 preceded by a tiny `main`.
    pub(crate) fn sum_fork_program(data: &[u64]) -> Program {
        let quads: Vec<String> = data.iter().map(u64::to_string).collect();
        let src = format!(
            "t:   .quad {}
             main: movq $t, %rdi
                   movq ${}, %rsi
                   fork sum
                   out  %rax
                   halt
             sum:  cmpq $2, %rsi
                   ja .L2
                   movq (%rdi), %rax
                   jne .L1
                   addq 8(%rdi), %rax
             .L1:  endfork
             .L2:  movq %rsi, %rbx
                   shrq %rsi
                   fork sum
                   subq $8, %rsp
                   movq %rax, 0(%rsp)
                   leaq (%rdi,%rsi,8), %rdi
                   subq %rsi, %rbx
                   movq %rbx, %rsi
                   fork sum
                   addq 0(%rsp), %rax
                   addq $8, %rsp
                   endfork",
            quads.join(", "),
            data.len(),
        );
        parsecs_asm::assemble(&src).expect("sum program assembles")
    }

    fn sectioned(data: &[u64]) -> SectionedTrace {
        SectionedTrace::from_program(&sum_fork_program(data), 1_000_000).expect("runs")
    }

    #[test]
    fn sum_of_five_has_the_papers_sections() {
        // Figure 4 / Figure 6: five sections of 11, 16, 12, 3 and 3
        // instructions. Our initial section additionally carries the 3
        // `main` instructions before the first fork, and the continuation
        // of `main` (out, halt) forms a final 2-instruction section.
        let st = sectioned(&[4, 2, 6, 4, 5]);
        assert_eq!(st.outputs(), &[21]);
        assert_eq!(st.sections().len(), 6);
        assert_eq!(st.section_sizes(), vec![3 + 11, 16, 12, 3, 3, 2]);
        assert_eq!(st.len(), 45 + 5);
        assert_eq!(st.longest_section(), 16);
        // The first section starts at `main`, is not created by anyone.
        assert_eq!(st.sections()[0].creator, None);
        // Section 2 (paper numbering) is created by the first `fork` of the
        // initial section.
        let (creator, fork_seq) = st.sections()[1].creator.unwrap();
        assert_eq!(creator, SectionId(0));
        assert_eq!(st.records()[fork_seq].kind, TraceKind::Fork);
        // Sections are contiguous and ordered.
        for w in st.sections().windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn creator_always_precedes_created_section() {
        let st = sectioned(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        for span in st.sections() {
            if let Some((creator, fork_seq)) = span.creator {
                assert!(creator < span.id, "{creator:?} must precede {:?}", span.id);
                assert!(fork_seq < span.start);
            }
        }
    }

    #[test]
    fn every_instruction_belongs_to_exactly_one_section() {
        let st = sectioned(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let total: usize = st.section_sizes().iter().sum();
        assert_eq!(total, st.len());
        for record in st.records() {
            let span = &st.sections()[record.section.0];
            assert!(record.seq >= span.start && record.seq < span.end);
            assert_eq!(record.index_in_section, record.seq - span.start);
        }
    }

    #[test]
    fn rax_of_the_resume_comes_from_the_preceding_section() {
        // Instruction 2-2 of Figure 6 (movq %rax, 0(%rsp)) consumes the rax
        // produced by the last instruction of the recursive descent hosted
        // in section 1 — the canonical remote renaming example of §4.2.
        let st = sectioned(&[4, 2, 6, 4, 5]);
        let section2 = st.section_records(SectionId(1));
        let store = &section2[1];
        assert_eq!(store.mnemonic, "movq");
        assert!(store.is_store);
        let rax = store
            .reg_sources
            .iter()
            .find(|d| d.location == Location::Reg(Reg::Rax))
            .expect("reads %rax");
        match rax.kind {
            SourceKind::Remote {
                producer_section, ..
            } => {
                assert_eq!(producer_section, SectionId(0));
            }
            other => panic!("expected a remote source, found {other:?}"),
        }
        // Its %rsp comes from the `subq $8, %rsp` just before it (2-1),
        // i.e. a local renaming hit.
        let rsp = store
            .reg_sources
            .iter()
            .find(|d| d.location == Location::Reg(Reg::Rsp))
            .expect("reads %rsp for the address");
        assert!(matches!(rsp.kind, SourceKind::Local { .. }));
        // The array pointer %rdi used by 2-3 (leaq) was written by `main`
        // before the creating fork, so it arrives with the section-creation
        // message: the fork copy.
        let lea = &section2[2];
        assert_eq!(lea.mnemonic, "leaq");
        let rdi = lea
            .reg_sources
            .iter()
            .find(|d| d.location == Location::Reg(Reg::Rdi))
            .expect("reads %rdi");
        assert_eq!(rdi.kind, SourceKind::ForkCopy);
    }

    #[test]
    fn final_sum_reads_memory_written_by_an_earlier_section() {
        // Instruction 5-1 of Figure 6 (addq 0(%rsp), %rax) reads the stack
        // word written by instruction 2-2: memory renaming across sections.
        let st = sectioned(&[4, 2, 6, 4, 5]);
        let section5 = st.section_records(SectionId(4));
        let add = &section5[0];
        assert_eq!(add.mnemonic, "addq");
        assert!(add.is_load);
        let mem = &add.mem_sources[0];
        match mem.kind {
            SourceKind::Remote {
                producer_section,
                producer,
            } => {
                assert_eq!(producer_section, SectionId(1));
                assert_eq!(st.records()[producer].mnemonic, "movq");
            }
            other => panic!("expected a remote memory source, found {other:?}"),
        }
    }

    #[test]
    fn array_loads_come_from_the_loader() {
        let st = sectioned(&[4, 2, 6, 4, 5]);
        // The first load of t[0] has no in-program producer: it is served
        // by the loader / data memory hierarchy.
        let load = st
            .records()
            .iter()
            .find(|r| r.is_load && !r.mem_sources.is_empty())
            .expect("some load exists");
        assert!(matches!(
            load.mem_sources[0].kind,
            SourceKind::InitialMemory | SourceKind::Remote { .. }
        ));
        let initial_loads = st
            .records()
            .iter()
            .flat_map(|r| r.mem_sources.iter())
            .filter(|d| d.kind == SourceKind::InitialMemory)
            .count();
        assert_eq!(
            initial_loads, 5,
            "each of the five array elements is loaded once"
        );
    }

    #[test]
    fn call_based_program_is_a_single_section() {
        let program = parsecs_asm::assemble(
            "main: movq $3, %rdi
                   call f
                   out %rax
                   halt
             f:    movq %rdi, %rax
                   imulq %rdi, %rax
                   ret",
        )
        .unwrap();
        let st = SectionedTrace::from_program(&program, 1_000).unwrap();
        assert_eq!(st.sections().len(), 1);
        assert_eq!(st.outputs(), &[9]);
        assert_eq!(st.section_sizes(), vec![7]);
    }

    #[test]
    fn paper_instruction_names() {
        let st = sectioned(&[4, 2, 6, 4, 5]);
        assert_eq!(st.records()[0].name(), "1-1");
        let last = st.records().last().unwrap();
        assert_eq!(last.name(), format!("{}-{}", st.sections().len(), 2));
    }

    #[test]
    fn scaling_matches_the_papers_formula() {
        // §5: for 5·2^n elements the fork run executes 45·2^n + 14·(2^n−1)
        // instructions (excluding our 5-instruction main/out/halt wrapper:
        // 3 before the first fork, 2 in the final section).
        for n in 0..4u32 {
            let elements = 5 * (1usize << n);
            let data: Vec<u64> = (0..elements as u64).collect();
            let st = sectioned(&data);
            let expected = 45 * (1u64 << n) + 14 * ((1u64 << n) - 1);
            assert_eq!(st.len() as u64, expected + 5, "for {elements} elements");
            assert_eq!(st.outputs(), &[data.iter().sum::<u64>()]);
        }
    }
}
