//! The many-core timing simulator.
//!
//! The simulator models the paper's execution as two coupled layers:
//!
//! 1. a *functional* layer — [`SectionedTrace`] runs the program, splits it
//!    into sections and resolves every producer/consumer pair; and
//! 2. a *timing* layer — this module places sections on cores and advances
//!    the chip cycle by cycle: every core fetches one instruction per cycle
//!    along its current section (computing control in the fetch stage
//!    rather than predicting it), section-creation messages travel over the
//!    NoC, remote operands are obtained through renaming requests charged
//!    with the NoC latency, memory instructions go through the
//!    address-rename and memory-access stages, and each section retires in
//!    order.
//!
//! The output is a per-instruction, per-stage cycle table (Figure 10 of the
//! paper) plus aggregate fetch/retire IPC (§5).

use std::collections::{HashMap, VecDeque};

use parsecs_isa::Program;
use parsecs_machine::TraceKind;
use parsecs_noc::{CoreId, Network, NocStats};

use crate::{
    InstTiming, SectionId, SectionSpan, SectionedTrace, SimConfig, SimError, SimStats, SourceKind,
};

/// The result of one many-core simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Values emitted by `out` instructions during the run.
    pub outputs: Vec<u64>,
    /// Per-instruction stage timings, in sequential order.
    pub timings: Vec<InstTiming>,
    /// The sections of the run, in total order.
    pub sections: Vec<SectionSpan>,
    /// The core hosting each section (indexed by section id).
    pub core_of: Vec<CoreId>,
    /// Aggregate statistics.
    pub stats: SimStats,
}

impl SimResult {
    /// The timings of one section, in fetch order.
    pub fn section_timings(&self, id: SectionId) -> Vec<&InstTiming> {
        self.timings.iter().filter(|t| t.section == id).collect()
    }
}

/// The many-core simulator of the sectioned execution model.
#[derive(Debug, Clone)]
pub struct ManyCoreSim {
    config: SimConfig,
}

#[derive(Debug, Default)]
struct CoreState {
    queue: VecDeque<SectionId>,
    current: Option<SectionId>,
    next_seq: usize,
    stall_on: Option<usize>,
    sections_hosted: usize,
}

enum Resolution {
    Resolved,
    WaitingOn(usize),
}

impl ManyCoreSim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> ManyCoreSim {
        ManyCoreSim { config }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `program` functionally, splits it into sections and simulates
    /// its distributed execution.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration and
    /// [`SimError::Machine`] if the functional pre-execution fails.
    pub fn run(&self, program: &Program) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let trace = SectionedTrace::from_program(program, self.config.fuel)?;
        self.simulate(&trace)
    }

    /// Simulates an already-sectioned trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate(&self, trace: &SectionedTrace) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let records = trace.records();
        let sections = trace.sections();
        let n = records.len();

        // --- placement ---------------------------------------------------
        let core_of = self.place(sections)?;
        let topology = self.config.effective_topology();
        let mut network: Network<SectionId> = Network::new(topology, self.config.noc);

        // Which section does each dynamic fork create?
        let created_by: HashMap<usize, SectionId> = sections
            .iter()
            .filter_map(|s| s.creator.map(|(_, fork_seq)| (fork_seq, s.id)))
            .collect();

        // --- per-instruction timing state ---------------------------------
        let mut fd: Vec<Option<u64>> = vec![None; n];
        let mut rr: Vec<Option<u64>> = vec![None; n];
        let mut ew: Vec<Option<u64>> = vec![None; n];
        let mut ar: Vec<Option<u64>> = vec![None; n];
        let mut ma: Vec<Option<u64>> = vec![None; n];
        let mut ret: Vec<Option<u64>> = vec![None; n];
        let mut complete: Vec<Option<u64>> = vec![None; n];

        let mut waiters: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut ret_waiters: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut resolve_queue: Vec<usize> = Vec::new();

        let mut cores: Vec<CoreState> = (0..self.config.cores)
            .map(|_| CoreState::default())
            .collect();

        // Statistics accumulated as instructions resolve.
        let mut remote_register_requests = 0u64;
        let mut remote_memory_requests = 0u64;
        let mut fork_copied_sources = 0u64;
        let mut dmh_accesses = 0u64;

        // The initial section is live from cycle 0 on its core.
        if !sections.is_empty() {
            let root_core = core_of[0].0;
            cores[root_core].current = Some(SectionId(0));
            cores[root_core].next_seq = sections[0].start;
            cores[root_core].sections_hosted = 1;
        }

        let mut fetched = 0usize;
        let mut resolved = 0usize;
        let mut cycle: u64 = 0;
        let safety = 200 * n as u64 + 10_000;

        while fetched < n || resolved < n {
            cycle += 1;
            assert!(
                cycle < safety,
                "many-core simulation did not converge after {cycle} cycles"
            );
            let progress_before = fetched + resolved;

            // Section-creation messages arriving this cycle.
            for envelope in network.deliver(cycle) {
                let core = &mut cores[envelope.dst.0];
                core.queue.push_back(envelope.payload);
                core.sections_hosted += 1;
            }

            // Fetch-decode: one instruction per core per cycle.
            for (core_index, core) in cores.iter_mut().enumerate() {
                if core.current.is_none() {
                    // Dequeuing the next section-creation message consumes
                    // this cycle; fetch starts on the next one.
                    if let Some(next) = core.queue.pop_front() {
                        core.current = Some(next);
                        core.next_seq = sections[next.0].start;
                    }
                    continue;
                }
                if let Some(stalled_on) = core.stall_on {
                    match complete[stalled_on] {
                        Some(c) if c < cycle => core.stall_on = None,
                        _ => continue,
                    }
                }
                let sid = core.current.expect("checked above");
                let span = &sections[sid.0];
                if core.next_seq >= span.end {
                    core.current = None;
                    continue;
                }
                let seq = core.next_seq;
                let record = &records[seq];
                fd[seq] = Some(cycle);
                rr[seq] = Some(cycle + 1);
                fetched += 1;
                core.next_seq += 1;
                resolve_queue.push(seq);

                // A fork sends a section-creation message to the host core
                // of the created section.
                if record.kind == TraceKind::Fork {
                    if let Some(&child) = created_by.get(&seq) {
                        network.send(CoreId(core_index), core_of[child.0], child, cycle);
                    }
                }

                let ends_section = record.kind == TraceKind::EndFork
                    || record.kind == TraceKind::Halt
                    || core.next_seq >= span.end;
                if ends_section {
                    core.current = None;
                } else if self.config.fetch_stalls_on_unresolved_control
                    && record.is_control
                    && !fetch_computable(record, &complete, cycle)
                {
                    // The fetch stage could not compute this control
                    // instruction (empty sources): the IP stays empty until
                    // the instruction executes.
                    core.stall_on = Some(seq);
                }
            }

            // Dependence resolution, in two decoupled steps.
            //
            // Step 1 (value completion): an instruction's result becomes
            // available as soon as its own sources are — it does *not* wait
            // for older instructions of its section to retire. This is the
            // out-of-order execute/memory behaviour of the paper's core.
            //
            // Step 2 (retirement): retirement is in order within a section,
            // so the retire cycle additionally waits for the previous
            // instruction's retire cycle.
            while let Some(seq) = resolve_queue.pop() {
                if complete[seq].is_some() {
                    // Value already known; only retirement may be pending.
                    try_retire(
                        seq,
                        records,
                        &complete,
                        &mut ret,
                        &mut resolved,
                        &mut ret_waiters,
                        &mut resolve_queue,
                    );
                    continue;
                }
                let record = &records[seq];
                let my_fd = fd[seq].expect("queued after fetch");
                let my_rr = rr[seq].expect("queued after fetch");
                let my_core = core_of[record.section.0];

                let resolution = (|| {
                    let mut local_remote_reg = 0u64;
                    let mut local_fork_copied = 0u64;
                    let mut reg_ready = 0u64;
                    let mut available_at_fetch = true;
                    for dep in &record.reg_sources {
                        let t = match dep.kind {
                            SourceKind::ForkCopy => {
                                local_fork_copied += 1;
                                0
                            }
                            SourceKind::InitialRegister | SourceKind::InitialMemory => 0,
                            SourceKind::Local { producer } => match complete[producer] {
                                Some(c) => {
                                    if c > my_fd {
                                        available_at_fetch = false;
                                    }
                                    c
                                }
                                None => return Resolution::WaitingOn(producer),
                            },
                            SourceKind::Remote {
                                producer,
                                producer_section,
                            } => {
                                available_at_fetch = false;
                                let c = match complete[producer] {
                                    Some(c) => c,
                                    None => return Resolution::WaitingOn(producer),
                                };
                                local_remote_reg += 1;
                                let hop = self.request_latency(
                                    &network,
                                    my_core,
                                    core_of[producer_section.0],
                                    record.section,
                                    producer_section,
                                );
                                c.max(my_rr + hop) + hop
                            }
                        };
                        reg_ready = reg_ready.max(t);
                    }

                    let is_mem = record.is_load || record.is_store;
                    let my_ew = if !is_mem && available_at_fetch && reg_ready <= my_fd {
                        // Computed directly in the fetch-decode stage.
                        my_fd
                    } else {
                        reg_ready.max(my_rr) + 1
                    };

                    let mut local_remote_mem = 0u64;
                    let mut local_dmh = 0u64;
                    let (my_ar, my_ma, completion) = if is_mem {
                        let a = my_ew + 1;
                        let mut mem_ready = a + 1;
                        for dep in &record.mem_sources {
                            let t = match dep.kind {
                                SourceKind::InitialMemory => {
                                    local_dmh += 1;
                                    a + self.config.dmh_latency
                                }
                                SourceKind::Local { producer } => match complete[producer] {
                                    Some(c) => c.max(a + 1),
                                    None => return Resolution::WaitingOn(producer),
                                },
                                SourceKind::Remote {
                                    producer,
                                    producer_section,
                                } => {
                                    let c = match complete[producer] {
                                        Some(c) => c,
                                        None => return Resolution::WaitingOn(producer),
                                    };
                                    local_remote_mem += 1;
                                    let hop = self.request_latency(
                                        &network,
                                        my_core,
                                        core_of[producer_section.0],
                                        record.section,
                                        producer_section,
                                    );
                                    c.max(a + hop) + hop
                                }
                                SourceKind::ForkCopy | SourceKind::InitialRegister => a + 1,
                            };
                            mem_ready = mem_ready.max(t);
                        }
                        (Some(a), Some(mem_ready), mem_ready)
                    } else {
                        (None, None, my_ew)
                    };

                    ew[seq] = Some(my_ew);
                    ar[seq] = my_ar;
                    ma[seq] = my_ma;
                    complete[seq] = Some(completion);
                    remote_register_requests += local_remote_reg;
                    remote_memory_requests += local_remote_mem;
                    fork_copied_sources += local_fork_copied;
                    dmh_accesses += local_dmh;
                    Resolution::Resolved
                })();

                match resolution {
                    Resolution::Resolved => {
                        // Wake value consumers.
                        if let Some(waiting) = waiters.remove(&seq) {
                            resolve_queue.extend(waiting);
                        }
                        try_retire(
                            seq,
                            records,
                            &complete,
                            &mut ret,
                            &mut resolved,
                            &mut ret_waiters,
                            &mut resolve_queue,
                        );
                    }
                    Resolution::WaitingOn(dep) => {
                        waiters.entry(dep).or_default().push(seq);
                    }
                }
            }

            // Deadlock avoidance. A fetch stall can wait on a value produced
            // by a section that is queued *behind* the stalled section on
            // the same core (the "devil in the details" case the paper
            // acknowledges). When a whole cycle makes no progress and no
            // message is in flight, release the stalled fetch stages: the
            // stalled branch will simply resolve out of order in the
            // execute stage, as a real implementation must allow.
            if fetched + resolved == progress_before && network.in_flight() == 0 && fetched < n {
                for core in &mut cores {
                    core.stall_on = None;
                }
            }
        }

        // --- assemble the result -------------------------------------------
        let timings: Vec<InstTiming> = records
            .iter()
            .map(|record| InstTiming {
                seq: record.seq,
                name: record.name(),
                ip: record.ip,
                mnemonic: record.mnemonic,
                section: record.section,
                core: core_of[record.section.0],
                fd: fd[record.seq].expect("fetched"),
                rr: rr[record.seq].expect("renamed"),
                ew: ew[record.seq].expect("executed"),
                ar: ar[record.seq],
                ma: ma[record.seq],
                ret: ret[record.seq].expect("retired"),
            })
            .collect();

        let stats = self.stats(
            trace,
            &timings,
            &core_of,
            &cores,
            network.stats(),
            remote_register_requests,
            remote_memory_requests,
            fork_copied_sources,
            dmh_accesses,
        );

        Ok(SimResult {
            outputs: trace.outputs().to_vec(),
            timings,
            sections: sections.to_vec(),
            core_of,
            stats,
        })
    }

    /// Latency of one leg (request or response) of a renaming exchange
    /// between the consumer's and the producer's cores, including the
    /// optional per-intermediate-section charge for the backward walk.
    fn request_latency(
        &self,
        network: &Network<SectionId>,
        consumer: CoreId,
        producer: CoreId,
        consumer_section: SectionId,
        producer_section: SectionId,
    ) -> u64 {
        let gap = consumer_section
            .0
            .saturating_sub(producer_section.0)
            .saturating_sub(1) as u64;
        network.latency(consumer, producer) + self.config.per_section_hop * gap
    }

    /// Delegates the section-to-core assignment to the configured
    /// [`crate::PlacementPolicy`] and validates its output.
    fn place(&self, sections: &[SectionSpan]) -> Result<Vec<CoreId>, SimError> {
        let chip = self.config.chip_view();
        let core_of = self.config.placement.assign(sections, &chip);
        if core_of.len() != sections.len() {
            return Err(SimError::Config(format!(
                "placement policy '{}' assigned {} cores for {} sections",
                self.config.placement.name(),
                core_of.len(),
                sections.len()
            )));
        }
        if let Some(bad) = core_of.iter().find(|c| c.0 >= self.config.cores) {
            return Err(SimError::Config(format!(
                "placement policy '{}' chose {bad} on a {}-core chip",
                self.config.placement.name(),
                self.config.cores
            )));
        }
        Ok(core_of)
    }

    #[allow(clippy::too_many_arguments)]
    fn stats(
        &self,
        trace: &SectionedTrace,
        timings: &[InstTiming],
        core_of: &[CoreId],
        cores: &[CoreState],
        noc: NocStats,
        remote_register_requests: u64,
        remote_memory_requests: u64,
        fork_copied_sources: u64,
        dmh_accesses: u64,
    ) -> SimStats {
        let instructions = timings.len() as u64;
        let fetch_cycles = timings.iter().map(|t| t.fd).max().unwrap_or(0);
        let total_cycles = timings.iter().map(|t| t.ret).max().unwrap_or(0);
        let mut used: Vec<CoreId> = core_of.to_vec();
        used.sort();
        used.dedup();
        SimStats {
            instructions,
            sections: trace.sections().len(),
            cores_used: used.len(),
            fetch_cycles,
            total_cycles,
            fetch_ipc: if fetch_cycles == 0 {
                0.0
            } else {
                instructions as f64 / fetch_cycles as f64
            },
            retire_ipc: if total_cycles == 0 {
                0.0
            } else {
                instructions as f64 / total_cycles as f64
            },
            remote_register_requests,
            remote_memory_requests,
            fork_copied_sources,
            dmh_accesses,
            peak_sections_per_core: cores.iter().map(|c| c.sections_hosted).max().unwrap_or(0),
            noc,
        }
    }
}

/// Step 2 of dependence resolution: in-order retirement within a section.
/// Sets `ret[seq]` once the instruction's value is complete and its
/// predecessor in the section has retired, then wakes the successor that
/// may be waiting on this retirement.
#[allow(clippy::too_many_arguments)]
fn try_retire(
    seq: usize,
    records: &[crate::InstRecord],
    complete: &[Option<u64>],
    ret: &mut [Option<u64>],
    resolved: &mut usize,
    ret_waiters: &mut HashMap<usize, Vec<usize>>,
    resolve_queue: &mut Vec<usize>,
) {
    if ret[seq].is_some() {
        return;
    }
    let Some(completion) = complete[seq] else {
        return;
    };
    let record = &records[seq];
    let prev_ret = if record.index_in_section == 0 {
        Some(0)
    } else {
        ret[seq - 1]
    };
    match prev_ret {
        Some(prev) => {
            ret[seq] = Some(completion.max(prev) + 1);
            *resolved += 1;
            if let Some(waiting) = ret_waiters.remove(&seq) {
                resolve_queue.extend(waiting);
            }
        }
        None => {
            ret_waiters.entry(seq - 1).or_default().push(seq);
        }
    }
}

/// Whether a control instruction can be computed by the fetch-decode stage
/// at fetch time: all of its register/flags sources are already full in the
/// local register file (fork-copied, initial, or produced locally and
/// complete no later than the fetch cycle).
fn fetch_computable(
    record: &crate::InstRecord,
    complete: &[Option<u64>],
    fetch_cycle: u64,
) -> bool {
    if record.is_load || record.is_store {
        return false;
    }
    record.reg_sources.iter().all(|dep| match dep.kind {
        SourceKind::ForkCopy | SourceKind::InitialRegister | SourceKind::InitialMemory => true,
        SourceKind::Local { producer } => {
            matches!(complete[producer], Some(c) if c <= fetch_cycle)
        }
        SourceKind::Remote { .. } => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format_figure10;
    use crate::section::tests::sum_fork_program;

    fn sim_sum(data: &[u64], config: SimConfig) -> SimResult {
        let program = sum_fork_program(data);
        ManyCoreSim::new(config).run(&program).expect("simulates")
    }

    #[test]
    fn sum_of_five_reproduces_the_papers_shape() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert_eq!(result.outputs, vec![21]);
        assert_eq!(result.stats.sections, 6);
        assert_eq!(result.stats.instructions, 50);
        // The paper's Figure 10 fetches the 45 sum instructions in 30
        // cycles and retires them by cycle 43; our run adds a 5-instruction
        // main wrapper, so allow a modest band around those values.
        assert!(
            (25..=45).contains(&result.stats.fetch_cycles),
            "fetch span {} outside the expected band",
            result.stats.fetch_cycles
        );
        assert!(
            (35..=90).contains(&result.stats.total_cycles),
            "retire span {} outside the expected band",
            result.stats.total_cycles
        );
        assert!(result.stats.fetch_ipc > 1.0);
        // The first instruction is fetched at cycle 1 on the root core.
        assert_eq!(result.timings[0].fd, 1);
    }

    #[test]
    fn stage_cycles_are_monotone_within_an_instruction() {
        let result = sim_sum(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3], SimConfig::with_cores(16));
        for t in &result.timings {
            assert!(t.rr > t.fd, "{}: rr after fd", t.name);
            assert!(t.ew >= t.fd, "{}: ew at or after fd", t.name);
            if let (Some(a), Some(m)) = (t.ar, t.ma) {
                assert!(a > t.ew, "{}: ar after ew", t.name);
                assert!(m > a, "{}: ma after ar", t.name);
            }
            assert!(t.ret > t.ew, "{}: retire after execute", t.name);
        }
    }

    #[test]
    fn fetch_is_one_instruction_per_core_per_cycle() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        let mut per_core_cycle: HashMap<(CoreId, u64), u64> = HashMap::new();
        for t in &result.timings {
            *per_core_cycle.entry((t.core, t.fd)).or_insert(0) += 1;
        }
        assert!(per_core_cycle.values().all(|c| *c == 1));
    }

    #[test]
    fn retirement_is_in_order_within_a_section() {
        let result = sim_sum(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], SimConfig::with_cores(16));
        for span in &result.sections {
            let timings = result.section_timings(span.id);
            for pair in timings.windows(2) {
                assert!(
                    pair[1].ret > pair[0].ret,
                    "retirement must be in order within {}",
                    span.id
                );
                assert!(
                    pair[1].fd > pair[0].fd,
                    "fetch must be in order within {}",
                    span.id
                );
            }
        }
    }

    #[test]
    fn remote_operands_are_charged_noc_latency() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert!(
            result.stats.remote_register_requests >= 2,
            "each resume waits for %rax"
        );
        assert!(
            result.stats.remote_memory_requests >= 1,
            "the final sum reads a remote stack word"
        );
        assert!(result.stats.fork_copied_sources > 0);
        assert_eq!(
            result.stats.dmh_accesses, 5,
            "five array elements come from the loader"
        );
    }

    #[test]
    fn more_cores_do_not_slow_the_run_down() {
        let data: Vec<u64> = (1..=40).collect();
        let few = sim_sum(&data, SimConfig::with_cores(2));
        let many = sim_sum(&data, SimConfig::with_cores(64));
        assert_eq!(few.outputs, many.outputs);
        assert!(many.stats.fetch_cycles <= few.stats.fetch_cycles);
        assert!(many.stats.fetch_ipc >= few.stats.fetch_ipc);
    }

    #[test]
    fn single_core_still_works_and_is_slower() {
        let data: Vec<u64> = (1..=20).collect();
        let one = sim_sum(&data, SimConfig::with_cores(1));
        let many = sim_sum(&data, SimConfig::with_cores(32));
        assert_eq!(one.outputs, vec![210]);
        assert!(one.stats.fetch_cycles >= many.stats.fetch_cycles);
        assert_eq!(one.stats.cores_used, 1);
    }

    #[test]
    fn least_loaded_placement_balances_instructions() {
        let data: Vec<u64> = (1..=40).collect();
        let config = SimConfig::with_cores(4).with_placement(crate::Placement::LeastLoaded);
        let result = sim_sum(&data, config);
        let mut per_core = vec![0usize; 4];
        for (sid, core) in result.core_of.iter().enumerate() {
            per_core[core.0] += result.sections[sid].len();
        }
        let max = *per_core.iter().max().unwrap();
        let min = *per_core.iter().filter(|c| **c > 0).min().unwrap();
        assert!(max <= min * 3, "placement should spread work: {per_core:?}");
    }

    #[test]
    fn call_based_program_runs_on_one_section() {
        let program = parsecs_asm::assemble(
            "main: movq $6, %rdi
                   call fact
                   out  %rax
                   halt
             fact: movq $1, %rax
                   movq %rdi, %rcx
             loop: imulq %rcx, %rax
                   subq $1, %rcx
                   jne loop
                   ret",
        )
        .unwrap();
        let result = ManyCoreSim::new(SimConfig::with_cores(4))
            .run(&program)
            .unwrap();
        assert_eq!(result.outputs, vec![720]);
        assert_eq!(result.stats.sections, 1);
        assert_eq!(result.stats.cores_used, 1);
        assert!(
            result.stats.fetch_ipc <= 1.0,
            "a single section fetches at most 1 IPC"
        );
    }

    #[test]
    fn invalid_configuration_is_reported() {
        let program = sum_fork_program(&[1, 2, 3]);
        let err = ManyCoreSim::new(SimConfig::with_cores(0))
            .run(&program)
            .unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn figure10_table_lists_every_instruction_grouped_by_core() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        let table = format_figure10(&result);
        assert!(table.contains("core0 pipeline"));
        assert!(table.contains("fork"));
        assert!(table.contains("endfork"));
        let instruction_rows = table
            .lines()
            .filter(|l| {
                l.trim_start()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit())
            })
            .count();
        assert_eq!(instruction_rows, result.timings.len());
    }

    #[test]
    fn per_section_hop_penalty_increases_latency() {
        let data: Vec<u64> = (1..=20).collect();
        let base = sim_sum(&data, SimConfig::with_cores(8));
        let mut slow_cfg = SimConfig::with_cores(8);
        slow_cfg.per_section_hop = 10;
        let slow = sim_sum(&data, slow_cfg);
        assert_eq!(base.outputs, slow.outputs);
        assert!(slow.stats.total_cycles >= base.stats.total_cycles);
    }

    #[test]
    fn disabling_fetch_stalls_never_slows_fetch() {
        let data: Vec<u64> = (1..=20).collect();
        let mut cfg = SimConfig::with_cores(8);
        cfg.fetch_stalls_on_unresolved_control = false;
        let ideal = sim_sum(&data, cfg);
        let real = sim_sum(&data, SimConfig::with_cores(8));
        assert!(ideal.stats.fetch_cycles <= real.stats.fetch_cycles);
    }
}
