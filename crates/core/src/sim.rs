//! The many-core timing simulator.
//!
//! The simulator models the paper's execution as two coupled layers:
//!
//! 1. a *functional* layer — [`SectionedTrace`] runs the program, splits it
//!    into sections and resolves every producer/consumer pair; and
//! 2. a *timing* layer — this module places sections on cores and advances
//!    the chip: every core fetches one instruction per cycle along its
//!    current section (computing control in the fetch stage rather than
//!    predicting it), section-creation messages travel over the NoC,
//!    remote operands are obtained through renaming requests charged with
//!    the NoC latency, memory instructions go through the address-rename
//!    and memory-access stages, and each section retires in order.
//!
//! The timing layer is **event-driven**: instead of stepping the chip one
//! cycle at a time and rescanning every core, the scheduler keeps a
//! two-level calendar queue of per-core wake-up events (next fetch,
//! section dequeue, stall release) plus the NoC's next message arrival
//! ([`parsecs_noc::Network::next_arrival`]) and the pending stall-handoff
//! requeue events, and jumps the clock straight to the next event.
//! Dependence resolution uses producer→consumer wake-up lists, so a
//! queued instruction is touched only when one of its inputs completes.
//!
//! Fetch stalls follow the **in-order handoff model** (shared with the
//! reference loop through [`StallTable`]): a control instruction whose
//! sources are not full stalls the fetch stage. If the stall's release
//! cycle is already known — the control instruction's completion has been
//! resolved, locally or as the arrival cycle of the remote operand's NoC
//! ack — the section keeps the fetch slot and resumes right after that
//! cycle. If the release is *unknown*, the section **parks**: it registers
//! on a wake list keyed to the stalled control instruction and hands the
//! core back to its queued sections, so the chip keeps fetching the very
//! producers the stall is waiting for. When the completion is discovered,
//! an explicit requeue event puts the parked section back on its core's
//! ready queue at the modeled release cycle. Every stall therefore has a
//! modeled release event and well-formed traces never deadlock;
//! [`SimStats::forced_stall_releases`] remains only as a deadlock
//! *detector* (any firing flags a malformed trace and is surfaced as an
//! error by the driver layer).
//!
//! The original cycle-stepping loop is retained in
//! [`ManyCoreSim::simulate_reference`] and the two implementations are
//! held bit-identical by differential tests (every [`SimResult`] field,
//! including the per-instruction stage table and all statistics, must
//! match exactly).
//!
//! The output is a per-instruction, per-stage cycle table (Figure 10 of the
//! paper) plus aggregate fetch/retire IPC (§5).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::hash::BuildHasherDefault;

use parsecs_check::CheckReport;
use parsecs_isa::Program;
use parsecs_machine::TraceKind;
use parsecs_noc::{CoreId, Network, NocStats};
use parsecs_trace::{AddrHasher, TraceArena};

use crate::{
    InstTiming, SectionId, SectionSpan, SectionedTrace, SimConfig, SimError, SimStats, SourceKind,
};

/// Sentinel for a cycle that has not been computed yet (the resolver's
/// columns are flat `u64`s instead of `Option<u64>`s — half the memory,
/// and the timing columns `rr`/`ar`/`ma` are derived rather than stored).
pub(crate) const UNKNOWN: u64 = u64::MAX;

/// Tag bit of the resolver's `complete` column: an entry at or above this
/// value is *not yet complete*. A fetched-but-unresolved instruction
/// stores `INCOMPLETE | fetch_cycle`, so the column doubles as the fetch
/// record and the resolver needs no separate per-instruction `fd` column
/// in stats-only runs (simulated cycle counts stay far below 2^63 — the
/// convergence guard caps them at ~200× the instruction count). `UNKNOWN`
/// (all ones) also has the bit set: a never-fetched instruction is
/// "not complete" under the same test.
pub(crate) const INCOMPLETE: u64 = 1 << 63;

/// The result of one many-core simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Values emitted by `out` instructions during the run.
    pub outputs: Vec<u64>,
    /// Per-instruction stage timings, in sequential order. **Empty when
    /// the run was stats-only** ([`SimConfig::record_timings`] off):
    /// aggregate statistics are then accumulated streaming during the
    /// simulation and the stage table is never materialised.
    pub timings: Vec<InstTiming>,
    /// Whether [`SimResult::timings`] was recorded. `false` for
    /// stats-only runs — which an empty `timings` alone cannot signal,
    /// because an empty *program* also has no rows.
    pub timings_recorded: bool,
    /// The sections of the run, in total order.
    pub sections: Vec<SectionSpan>,
    /// The core hosting each section (indexed by section id).
    pub core_of: Vec<CoreId>,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// The pre-simulation static analysis report (invariants, drain
    /// certificate, critical-path bounds) when the run was validated
    /// ([`SimConfig::validate`]); `None` otherwise. Both engines attach
    /// the identical report, so differential bit-identity covers it.
    pub check: Option<Box<CheckReport>>,
}

impl SimResult {
    /// The timings of one section, in fetch order: the contiguous
    /// `timings` rows of the section's span (timings are stored in
    /// sequential order and sections tile that order, so this is an O(1)
    /// subslice, not a scan). Empty when the run was stats-only or the
    /// id names no section of this run (matching the old filter scan,
    /// which also produced nothing for an unknown id).
    pub fn section_timings(&self, id: SectionId) -> &[InstTiming] {
        if !self.timings_recorded {
            return &[];
        }
        match self.sections.get(id.0) {
            Some(span) => &self.timings[span.start..span.end],
            None => &[],
        }
    }

    /// Modeled resident bytes of the simulator's own per-run state — the
    /// resolver columns, the per-section cursors (retirement, stall
    /// resume, fork map, placement) and the result views (stage table,
    /// section spans, outputs). The number that, added to
    /// [`SimStats::trace_arena_bytes`], caps how many instructions a
    /// chip-scale run can hold resident; a stats-only run drops the stage
    /// table and three resolver columns, cutting this from ~150 to ~17
    /// bytes per instruction. Derived from logical sizes (transient
    /// scratch like the wake queue and per-core state is excluded), so it
    /// is deterministic across engines.
    pub fn sim_state_bytes(&self) -> u64 {
        use std::mem::size_of;
        let n = self.stats.instructions;
        let sections = self.sections.len() as u64;
        // Tagged completion column + two wake-list links always; the
        // fd/ew/ret stage columns only when timings are recorded.
        let resolver = n * 16 + if self.timings_recorded { n * 24 } else { 0 };
        // Retirement cursors (u32 + u64), stall resume point, one
        // fork→created-section map entry, placement.
        let per_section = sections * (12 + 8 + 24 + 8);
        let views = self.timings.len() as u64 * size_of::<InstTiming>() as u64
            + sections * size_of::<SectionSpan>() as u64
            + self.core_of.len() as u64 * size_of::<CoreId>() as u64
            + self.outputs.len() as u64 * 8;
        resolver + per_section + views
    }

    /// Total resident footprint of the run — trace arena plus simulator
    /// state ([`SimResult::sim_state_bytes`]) — per simulated
    /// instruction.
    pub fn total_bytes_per_instruction(&self) -> f64 {
        if self.stats.instructions == 0 {
            0.0
        } else {
            (self.stats.trace_arena_bytes + self.sim_state_bytes()) as f64
                / self.stats.instructions as f64
        }
    }
}

/// The many-core simulator of the sectioned execution model.
#[derive(Debug, Clone)]
pub struct ManyCoreSim {
    config: SimConfig,
}

/// Everything both engines derive from the configuration before timing
/// starts: the section placement, the freshly created NoC and the
/// fork-site → created-section map.
pub(crate) struct Prepared {
    pub(crate) core_of: Vec<CoreId>,
    pub(crate) network: Network<SectionId>,
    pub(crate) created_by: HashMap<usize, SectionId>,
}

/// One core of the chip, as both timing engines model it.
#[derive(Debug, Default)]
pub(crate) struct CoreState {
    /// Sections delivered (or requeued) to this core, ready to fetch.
    pub(crate) queue: VecDeque<SectionId>,
    /// The section currently owning the fetch stage.
    pub(crate) current: Option<SectionId>,
    /// Next trace index the fetch stage will fetch from `current`.
    pub(crate) next_seq: usize,
    /// Trace index of the control instruction the fetch stage is stalled
    /// on, when it is stalled in place (known release cycle).
    pub(crate) stall_on: Option<usize>,
    /// Total sections ever hosted (delivered) on this core.
    pub(crate) sections_hosted: usize,
    /// Cycle of this core's outstanding wake-up event, if any (event
    /// engine only). Queue entries that no longer match are stale and
    /// skipped on pop.
    pub(crate) wake_at: Option<u64>,
    /// Whether the core is in the event engine's run list (acts every
    /// cycle). Event engine only.
    pub(crate) running: bool,
}

/// The in-order fetch-stall handoff state shared by both timing engines.
///
/// A fetch stall whose control instruction has a *known* completion cycle
/// waits in place (the release event is already modeled). A stall whose
/// completion is still unknown **parks**: the section leaves the fetch
/// slot, registers here keyed on the stalled instruction, and the core
/// goes on to its queued sections. When the completion is discovered, a
/// requeue event — ordered by `(cycle, core, section)` so both engines
/// replay it identically — returns the section to its core's ready queue
/// at the modeled release cycle (strictly after the completion, so the
/// resumed fetch never re-stalls on the same instruction).
pub(crate) struct StallTable {
    /// Core parked on each stalled trace index. A sparse map, not a
    /// per-instruction column: at most one section per core is parked at
    /// any moment, so the table holds at most `cores` entries — where the
    /// old `Vec<usize>` indexed by trace position cost 8 bytes per
    /// instruction (800 MB of a 100M-instruction run, almost all of it
    /// sentinels).
    parked_core: HashMap<u64, u32, BuildHasherDefault<AddrHasher>>,
    /// Per-section fetch resume point (`usize::MAX` = section start).
    resume_at: Vec<usize>,
    /// Pending `(cycle, core, section)` requeue events, earliest first.
    requeue: BinaryHeap<Reverse<(u64, usize, usize)>>,
}

impl StallTable {
    pub(crate) fn new(sections: usize) -> StallTable {
        StallTable {
            parked_core: HashMap::default(),
            resume_at: vec![usize::MAX; sections],
            requeue: BinaryHeap::new(),
        }
    }

    /// Number of currently parked sections.
    pub(crate) fn parked(&self) -> usize {
        self.parked_core.len()
    }

    /// Makes `sid` the core's current section, resuming a parked section
    /// at its saved fetch point and a fresh one at its start.
    pub(crate) fn begin_section(
        &mut self,
        core: &mut CoreState,
        sections: &[SectionSpan],
        sid: SectionId,
    ) {
        core.current = Some(sid);
        core.next_seq = match std::mem::replace(&mut self.resume_at[sid.0], usize::MAX) {
            usize::MAX => sections[sid.0].start,
            resume => resume,
        };
    }

    /// Parks the core's current section on its stalled control
    /// instruction `seq`: the section leaves the fetch slot and will be
    /// requeued when `seq`'s completion is discovered.
    pub(crate) fn park(&mut self, idx: usize, core: &mut CoreState, seq: usize) {
        let sid = core.current.take().expect("a stalled core runs a section");
        debug_assert_eq!(core.stall_on, Some(seq));
        debug_assert_eq!(core.next_seq, seq + 1);
        core.stall_on = None;
        self.resume_at[sid.0] = core.next_seq;
        let previous = self.parked_core.insert(seq as u64, idx as u32);
        debug_assert!(previous.is_none(), "one section parks per instruction");
    }

    /// If a section is parked on `seq`, removes it from the park list and
    /// returns its core.
    pub(crate) fn unpark(&mut self, seq: usize) -> Option<usize> {
        self.parked_core
            .remove(&(seq as u64))
            .map(|idx| idx as usize)
    }

    /// Schedules section `sid` to rejoin core `idx`'s ready queue at
    /// cycle `at`.
    pub(crate) fn push_requeue(&mut self, at: u64, idx: usize, sid: SectionId) {
        self.requeue.push(Reverse((at, idx, sid.0)));
    }

    /// The earliest pending requeue cycle.
    pub(crate) fn next_requeue(&self) -> Option<u64> {
        self.requeue.peek().map(|&Reverse((at, _, _))| at)
    }

    /// Whether any requeue event is pending.
    pub(crate) fn pending_requeues(&self) -> bool {
        !self.requeue.is_empty()
    }

    /// Pops the next requeue event due at or before `cycle`.
    pub(crate) fn pop_due(&mut self, cycle: u64) -> Option<(usize, SectionId)> {
        match self.requeue.peek() {
            Some(&Reverse((at, idx, sid))) if at <= cycle => {
                debug_assert_eq!(at, cycle, "requeue events are never skipped");
                self.requeue.pop();
                Some((idx, SectionId(sid)))
            }
            _ => None,
        }
    }

    /// The deadlock *detector*'s escape: requeues every parked section at
    /// cycle `at` with its stall abandoned (the branch resolves out of
    /// order in the execute stage) and returns how many were released.
    /// Well-formed traces never reach this — any firing is surfaced as an
    /// error by the driver layer.
    pub(crate) fn force_release(&mut self, at: u64, arena: &TraceArena) -> u64 {
        // Map iteration order is arbitrary, but the requeue heap totally
        // orders its `(cycle, core, section)` events, so the releases
        // replay deterministically regardless.
        let mut released = 0u64;
        for (seq, idx) in self.parked_core.drain() {
            self.requeue
                .push(Reverse((at, idx as usize, arena.section(seq as usize).0)));
            released += 1;
        }
        released
    }
}

/// Near-term window of the event scheduler's calendar queue, in cycles.
/// Almost every wake-up is `cycle + 1` (the fetch continuation each
/// instruction schedules) or `cycle + 2`; those land in a ring of vectors
/// instead of paying a binary-heap push per fetched instruction.
const NEAR_WINDOW: u64 = 8;

/// Two-level per-core wake-up queue: a calendar ring for events within
/// [`NEAR_WINDOW`] cycles of the clock and a binary heap for the far
/// future. Entries are `(cycle, core)`; an entry is *stale* when the
/// core's `wake_at` no longer matches (a sooner wake-up replaced it) and
/// is dropped when its cycle is visited. The clock never jumps past a
/// queued entry, so each ring slot only ever holds entries for the single
/// in-window cycle it maps to.
struct WakeQueue {
    near: [Vec<(u64, usize)>; NEAR_WINDOW as usize],
    far: BinaryHeap<Reverse<(u64, usize)>>,
    /// Number of entries across the `near` ring, so the common empty-ring
    /// case skips the slot scan.
    near_entries: usize,
    /// Current clock; all queued entries are at cycles `>= horizon`.
    horizon: u64,
}

impl WakeQueue {
    fn new() -> WakeQueue {
        WakeQueue {
            near: std::array::from_fn(|_| Vec::new()),
            far: BinaryHeap::new(),
            near_entries: 0,
            horizon: 0,
        }
    }

    fn push(&mut self, at: u64, idx: usize) {
        debug_assert!(at >= self.horizon);
        if at < self.horizon + NEAR_WINDOW {
            self.near[(at % NEAR_WINDOW) as usize].push((at, idx));
            self.near_entries += 1;
        } else {
            self.far.push(Reverse((at, idx)));
        }
    }

    /// The earliest cycle holding a queued entry (possibly a stale one —
    /// visiting a stale cycle is a no-op that discards it).
    fn next_at(&self) -> Option<u64> {
        let mut best = self.far.peek().map(|&Reverse((at, _))| at);
        if self.near_entries > 0 {
            for cycle in self.horizon..self.horizon + NEAR_WINDOW {
                if !self.near[(cycle % NEAR_WINDOW) as usize].is_empty() {
                    best = Some(best.map_or(cycle, |b| b.min(cycle)));
                    break;
                }
            }
        }
        best
    }

    /// Advances the clock to `cycle`; subsequent pushes map into the ring
    /// relative to it.
    fn advance_to(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.horizon);
        self.horizon = cycle;
    }

    /// Drains every entry due at `cycle` into `due` (unsorted core
    /// indices; stale entries — whose core no longer wakes at `cycle` —
    /// are filtered by the caller's `wake_at` check).
    fn drain_due(&mut self, cycle: u64, due: &mut Vec<usize>) {
        if self.near_entries > 0 {
            let slot = &mut self.near[(cycle % NEAR_WINDOW) as usize];
            debug_assert!(slot.iter().all(|&(at, _)| at == cycle));
            self.near_entries -= slot.len();
            due.extend(slot.drain(..).map(|(_, idx)| idx));
        }
        while let Some(&Reverse((at, idx))) = self.far.peek() {
            if at > cycle {
                break;
            }
            self.far.pop();
            due.push(idx);
        }
    }
}

/// Registers `at` as `idx`'s next wake-up cycle (keeping the earlier one
/// when the core already has a sooner event).
fn schedule(cores: &mut [CoreState], queue: &mut WakeQueue, idx: usize, at: u64) {
    match cores[idx].wake_at {
        Some(existing) if existing <= at => {}
        _ => {
            cores[idx].wake_at = Some(at);
            queue.push(at, idx);
        }
    }
}

/// The sorted set of cores that act on every cycle (fetching, dequeuing,
/// or releasing a next-cycle stall), kept as an intrusive doubly-linked
/// list over core indices so that the overwhelmingly common case — a core
/// fetching straight-line code — costs *zero* scheduling work per cycle:
/// the core simply stays in the list. Cores join when a calendar wake-up
/// makes them act and leave when they go idle or wait on a far event.
struct RunList {
    head: usize,
    next: Vec<usize>,
    prev: Vec<usize>,
    len: usize,
    /// Whether `head`/`next`/`prev` reflect the membership flags. Dense
    /// cycles scan the core array and skip link maintenance entirely
    /// (membership is just the per-core flag plus `len`); the links are
    /// rebuilt in one pass when a sparse cycle needs to walk them again.
    links_valid: bool,
}

const NO_CORE: usize = usize::MAX;

impl RunList {
    fn new(cores: usize) -> RunList {
        RunList {
            head: NO_CORE,
            next: vec![NO_CORE; cores],
            prev: vec![NO_CORE; cores],
            len: 0,
            links_valid: true,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops link maintenance until [`RunList::ensure_links`] (a dense
    /// cycle is about to mutate membership through the flags alone).
    fn invalidate_links(&mut self) {
        self.links_valid = false;
    }

    /// Rebuilds the links from the membership flags if needed.
    fn ensure_links(&mut self, cores: &[CoreState]) {
        if self.links_valid {
            return;
        }
        self.head = NO_CORE;
        let mut last = NO_CORE;
        for (idx, core) in cores.iter().enumerate() {
            if core.running {
                self.prev[idx] = last;
                self.next[idx] = NO_CORE;
                if last == NO_CORE {
                    self.head = idx;
                } else {
                    self.next[last] = idx;
                }
                last = idx;
            }
        }
        self.links_valid = true;
    }

    /// Inserts `idx`, keeping the links (when live) sorted by core index.
    fn insert(&mut self, cores: &mut [CoreState], idx: usize) {
        debug_assert!(!cores[idx].running);
        cores[idx].running = true;
        self.len += 1;
        if !self.links_valid {
            return;
        }
        let mut after = NO_CORE;
        let mut cursor = self.head;
        while cursor != NO_CORE && cursor < idx {
            after = cursor;
            cursor = self.next[cursor];
        }
        self.next[idx] = cursor;
        self.prev[idx] = after;
        if cursor != NO_CORE {
            self.prev[cursor] = idx;
        }
        if after == NO_CORE {
            self.head = idx;
        } else {
            self.next[after] = idx;
        }
    }

    fn remove(&mut self, cores: &mut [CoreState], idx: usize) {
        debug_assert!(cores[idx].running);
        cores[idx].running = false;
        self.len -= 1;
        if !self.links_valid {
            return;
        }
        let (p, n) = (self.prev[idx], self.next[idx]);
        if p == NO_CORE {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n != NO_CORE {
            self.prev[n] = p;
        }
    }
}

impl ManyCoreSim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> ManyCoreSim {
        ManyCoreSim { config }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `program` functionally through the streaming trace pipeline
    /// ([`TraceArena::from_program`]: the machine pushes each retired
    /// instruction into the sectioner, which renames and resolves on the
    /// fly) and simulates its distributed execution with the event-driven
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration and
    /// [`SimError::Machine`] if the functional pre-execution fails.
    pub fn run(&self, program: &Program) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let arena = TraceArena::from_program(program, self.config.fuel)?;
        self.simulate_arena(&arena)
    }

    /// Like [`ManyCoreSim::run`], but timed by the retained cycle-stepping
    /// reference loop instead of the event-driven engine. The two produce
    /// bit-identical [`SimResult`]s; the reference exists as the oracle
    /// for differential tests and benchmarks.
    ///
    /// # Errors
    ///
    /// Same as [`ManyCoreSim::run`].
    pub fn run_reference(&self, program: &Program) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let arena = TraceArena::from_program(program, self.config.fuel)?;
        self.simulate_arena_reference(&arena)
    }

    /// Simulates an already-sectioned trace with the cycle-stepping
    /// reference loop. Compatibility shim: converts to the arena
    /// representation first; hot callers should hold a [`TraceArena`] and
    /// use [`ManyCoreSim::simulate_arena_reference`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate_reference(&self, trace: &SectionedTrace) -> Result<SimResult, SimError> {
        self.simulate_arena_reference(&trace.to_arena())
    }

    /// Simulates an already-sectioned trace with the event-driven engine.
    /// Compatibility shim: converts to the arena representation first;
    /// hot callers should hold a [`TraceArena`] and use
    /// [`ManyCoreSim::simulate_arena`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate(&self, trace: &SectionedTrace) -> Result<SimResult, SimError> {
        self.simulate_arena(&trace.to_arena())
    }

    /// Simulates an arena-backed trace with the cycle-stepping reference
    /// loop (see [`ManyCoreSim::run_reference`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate_arena_reference(&self, arena: &TraceArena) -> Result<SimResult, SimError> {
        crate::reference::simulate(self, arena)
    }

    /// Simulates an arena-backed trace with the event-driven engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate_arena(&self, arena: &TraceArena) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let check = self.precheck(arena)?;
        let sections = arena.sections();
        let n = arena.len();

        let Prepared {
            core_of,
            mut network,
            created_by,
        } = self.prepare(arena)?;
        let mut resolver = Resolver::new(&self.config, arena, n);

        let mut cores: Vec<CoreState> = (0..self.config.cores)
            .map(|_| CoreState::default())
            .collect();
        let mut wakes = WakeQueue::new();
        let mut stalls = StallTable::new(sections.len());
        let mut running = RunList::new(self.config.cores);
        // Deferred run-list membership changes from the fetch phase
        // (`true` = join, `false` = leave), applied after the walk so the
        // dense path can scan `cores` with a single mutable borrow.
        let mut membership: Vec<(usize, bool)> = Vec::new();
        let mut completions: Vec<(usize, u64)> = Vec::new();
        let mut newly_stalled: Vec<usize> = Vec::new();
        let mut due: Vec<usize> = Vec::new();
        let mut delivered = Vec::new();
        let mut forced_stall_releases = 0u64;

        // The initial section is live from cycle 0 on its core; its first
        // fetch happens at cycle 1.
        if !sections.is_empty() {
            let root_core = core_of[0].0;
            cores[root_core].current = Some(SectionId(0));
            cores[root_core].next_seq = sections[0].start;
            cores[root_core].sections_hosted = 1;
            schedule(&mut cores, &mut wakes, root_core, 1);
        }

        let mut fetched = 0usize;
        let mut cycle: u64 = 0;
        let safety = 200 * n as u64 + 10_000;

        while fetched < n || resolver.resolved < n {
            // --- pick the next cycle with an event -----------------------
            let target = if running.is_empty() {
                let candidate = [
                    wakes.next_at(),
                    network.next_arrival(),
                    stalls.next_requeue(),
                ]
                .into_iter()
                .flatten()
                .min();
                match candidate {
                    Some(at) => at.max(cycle + 1),
                    None => {
                        // Nothing is scheduled, nothing is in flight and no
                        // requeue is pending. Under the handoff model every
                        // stall has a modeled release event, so this is a
                        // genuine deadlock (a malformed trace): the detector
                        // escapes by abandoning the parked stalls — counted,
                        // and surfaced as an error by the driver layer.
                        if !(fetched < n && stalls.parked() > 0) {
                            return Err(SimError::Diverged {
                                reason: "deadlocked with no pending event",
                                cycle,
                                resolved: resolver.resolved as u64,
                                instructions: n as u64,
                            });
                        }
                        cycle += 1;
                        if cycle >= safety {
                            return Err(SimError::Diverged {
                                reason: "did not converge",
                                cycle,
                                resolved: resolver.resolved as u64,
                                instructions: n as u64,
                            });
                        }
                        forced_stall_releases += stalls.force_release(cycle + 1, arena);
                        continue;
                    }
                }
            } else {
                // The run-list fast path: at least one core acts on the
                // very next cycle (queued events are never earlier).
                cycle + 1
            };
            cycle = target;
            if cycle >= safety {
                return Err(SimError::Diverged {
                    reason: "did not converge",
                    cycle,
                    resolved: resolver.resolved as u64,
                    instructions: n as u64,
                });
            }
            wakes.advance_to(cycle);

            // --- requeue phase: parked sections whose stall released -----
            while let Some((idx, sid)) = stalls.pop_due(cycle) {
                cores[idx].queue.push_back(sid);
                if cores[idx].current.is_none() && !cores[idx].running {
                    // An idle core dequeues the resumed section this cycle.
                    schedule(&mut cores, &mut wakes, idx, cycle);
                }
            }

            // --- deliver phase: section-creation messages ----------------
            network.deliver_into(cycle, &mut delivered);
            for envelope in delivered.drain(..) {
                let idx = envelope.dst.0;
                let core = &mut cores[idx];
                core.queue.push_back(envelope.payload);
                core.sections_hosted += 1;
                if core.current.is_none() && !core.running {
                    // An idle core dequeues the message this very cycle.
                    schedule(&mut cores, &mut wakes, idx, cycle);
                }
            }

            // --- fetch-decode phase: woken cores, in core-index order ----
            // The run list holds every core acting this cycle (sorted);
            // calendar wake-ups (`due`) — section arrivals at idle cores
            // and in-place stall releases — are merged in by a two-pointer
            // walk when present. A due core whose `wake_at` no longer
            // matches is stale and skipped; run-list members carry no
            // `wake_at`, so a stale calendar entry can never
            // double-process a member. The per-core step is a macro so the
            // common no-wake-up cycle walks the run list with no picker
            // overhead.
            due.clear();
            wakes.drain_due(cycle, &mut due);
            macro_rules! step_core {
                ($idx:expr, $is_member:expr, $core:expr) => {{
                    let idx = $idx;
                    let is_member = $is_member;
                    let core: &mut CoreState = $core;

                    if core.current.is_none() {
                        // Dequeuing the next ready section consumes this
                        // cycle; fetch starts on the next one.
                        if let Some(next) = core.queue.pop_front() {
                            stalls.begin_section(core, sections, next);
                            if !is_member {
                                membership.push((idx, true));
                            }
                        } else if is_member {
                            membership.push((idx, false));
                        }
                        continue;
                    }
                    if let Some(stalled_on) = core.stall_on {
                        match resolver.completion(stalled_on) {
                            Some(c) if c < cycle => {
                                core.stall_on = None;
                            }
                            Some(c) => {
                                // The stall releases once the control
                                // instruction's completion is past.
                                if c + 1 == cycle + 1 {
                                    if !is_member {
                                        membership.push((idx, true));
                                    }
                                } else {
                                    if is_member {
                                        membership.push((idx, false));
                                    }
                                    core.wake_at = Some(c + 1);
                                    wakes.push(c + 1, idx);
                                }
                                continue;
                            }
                            // A stall with an unknown completion parks at
                            // the end of its stall cycle; it never holds
                            // the fetch slot across cycles.
                            None => unreachable!("an in-place stall has a known completion"),
                        }
                    }
                    let sid = core.current.expect("checked above");
                    let span = &sections[sid.0];
                    if core.next_seq >= span.end {
                        core.current = None;
                        if core.queue.is_empty() {
                            if is_member {
                                membership.push((idx, false));
                            }
                        } else if !is_member {
                            membership.push((idx, true));
                        }
                        continue;
                    }
                    let seq = core.next_seq;
                    let kind = arena.kind(seq);
                    resolver.fetch(seq, cycle);
                    fetched += 1;
                    core.next_seq += 1;

                    // A fork sends a section-creation message to the host
                    // core of the created section.
                    if kind == TraceKind::Fork {
                        if let Some(&child) = created_by.get(&seq) {
                            network.send(CoreId(idx), core_of[child.0], child, cycle);
                        }
                    }

                    let ends_section = kind == TraceKind::EndFork
                        || kind == TraceKind::Halt
                        || core.next_seq >= span.end;
                    if ends_section {
                        core.current = None;
                        if core.queue.is_empty() {
                            if is_member {
                                membership.push((idx, false));
                            }
                        } else if !is_member {
                            membership.push((idx, true));
                        }
                    } else if self.config.fetch_stalls_on_unresolved_control
                        && arena.is_control(seq)
                        && !fetch_computable(arena, seq, &resolver.complete, cycle)
                    {
                        // The fetch stage could not compute this control
                        // instruction (empty sources): the IP stays empty
                        // until the instruction executes. Tentatively keep
                        // the core running; the post-drain dispatch below
                        // parks or reschedules it if the stall spans
                        // cycles.
                        core.stall_on = Some(seq);
                        newly_stalled.push(idx);
                        if !is_member {
                            membership.push((idx, true));
                        }
                    } else if !is_member {
                        // Fetch continuation: members stay in the run list
                        // at zero cost, joiners enter it.
                        membership.push((idx, true));
                    }
                }};
            }
            if 2 * running.len >= self.config.cores {
                // Dense path: most cores act every cycle, so a linear scan
                // of the core array (the reference loop's shape, minus the
                // idle-core queue probes) beats walking the list. Calendar
                // wake-ups due now are exactly the non-members whose
                // `wake_at` matches, so the scan covers them in index
                // order and the drained entries are dropped. Membership
                // updates go through the flags alone; the links are
                // rebuilt when a sparse cycle next needs them.
                running.invalidate_links();
                for (idx, core) in cores.iter_mut().enumerate() {
                    let is_member = core.running;
                    if !is_member {
                        if core.wake_at != Some(cycle) {
                            continue;
                        }
                        core.wake_at = None;
                    }
                    step_core!(idx, is_member, core);
                }
            } else {
                // Sparse path: walk the run-list members, merging in the
                // calendar wake-ups (rare) by a two-pointer pass.
                running.ensure_links(&cores);
                due.sort_unstable();
                let mut di = 0usize;
                let mut cursor = running.head;
                loop {
                    // Pick the smaller of the next due core and the next
                    // member; a due entry for a member is stale (skipped).
                    let (idx, is_member) = match (due.get(di), cursor) {
                        (Some(&d), cur) if cur == NO_CORE || d <= cur => {
                            di += 1;
                            if cores[d].wake_at != Some(cycle) {
                                continue; // stale entry
                            }
                            cores[d].wake_at = None;
                            (d, false)
                        }
                        (_, cur) if cur != NO_CORE => {
                            cursor = running.next[cur];
                            (cur, true)
                        }
                        _ => break,
                    };
                    step_core!(idx, is_member, &mut cores[idx]);
                }
            }
            // Apply the walk's membership changes before anything below
            // consults or edits the run list.
            for &(idx, join) in &membership {
                if join {
                    running.insert(&mut cores, idx);
                } else {
                    running.remove(&mut cores, idx);
                }
            }
            membership.clear();

            // --- dependence resolution -----------------------------------
            completions.clear();
            resolver.drain(&network, &core_of, &mut completions);

            // A completion that a parked section stalls on is its modeled
            // release event: requeue the section on the first cycle after
            // both the completion is known and its cycle is past.
            if stalls.parked() > 0 {
                for &(seq, completion) in &completions {
                    if let Some(idx) = stalls.unpark(seq) {
                        stalls.push_requeue(
                            (cycle + 1).max(completion + 1),
                            idx,
                            arena.section(seq),
                        );
                    }
                }
            }
            // Dispatch the stalls created this cycle (all still in the run
            // list): a known completion (possibly resolved within this
            // very cycle's drain) stalls in place until just past it; an
            // unknown one hands the core off to its queued sections and
            // parks.
            for idx in newly_stalled.drain(..) {
                let Some(seq) = cores[idx].stall_on else {
                    continue;
                };
                match resolver.completion(seq) {
                    Some(c) => {
                        let wake = (cycle + 1).max(c + 1);
                        if wake > cycle + 1 {
                            running.remove(&mut cores, idx);
                            cores[idx].wake_at = Some(wake);
                            wakes.push(wake, idx);
                        }
                    }
                    None => {
                        stalls.park(idx, &mut cores[idx], seq);
                        if cores[idx].queue.is_empty() {
                            running.remove(&mut cores, idx);
                        }
                    }
                }
            }
        }

        let hosted: Vec<usize> = cores.iter().map(|c| c.sections_hosted).collect();
        self.finish(
            arena,
            resolver,
            core_of,
            &hosted,
            network.stats(),
            forced_stall_releases,
            check,
        )
    }

    /// Runs the static analysis of `parsecs-check` over the arena when
    /// [`SimConfig::validate`] is on: a structurally invalid arena is
    /// rejected as [`SimError::Invariant`]; a clean report is returned
    /// for attachment to [`SimResult::check`]. A single branch (and no
    /// work at all) when validation is off.
    pub(crate) fn precheck(
        &self,
        arena: &TraceArena,
    ) -> Result<Option<Box<CheckReport>>, SimError> {
        if !self.config.validate {
            return Ok(None);
        }
        let report = parsecs_check::check_arena(arena);
        if !report.is_clean() {
            return Err(SimError::Invariant(Box::new(report)));
        }
        Ok(Some(Box::new(report)))
    }

    /// Validates the placement and builds the shared pre-timing state.
    pub(crate) fn prepare(&self, arena: &TraceArena) -> Result<Prepared, SimError> {
        let sections = arena.sections();
        let core_of = self.place(arena)?;
        let topology = self.config.effective_topology();
        let network: Network<SectionId> = Network::new(topology, self.config.noc);

        // Which section does each dynamic fork create?
        let created_by: HashMap<usize, SectionId> = sections
            .iter()
            .filter_map(|s| s.creator.map(|(_, fork_seq)| (fork_seq, s.id)))
            .collect();

        Ok(Prepared {
            core_of,
            network,
            created_by,
        })
    }

    /// Assembles the [`SimResult`] from a finished resolver. The
    /// aggregate cycle counts come from the resolver's streaming
    /// accumulators — identical in both stats modes (and zero for an
    /// empty program) — so only the per-row stage table depends on
    /// [`SimConfig::record_timings`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Diverged`] when an instruction comes out of
    /// the resolver with sentinel cycles — the stall/wake model broke
    /// down, and sentinels must never leak into reported timings (a hard
    /// check, release builds included; the one-branch-per-instruction
    /// cost is negligible next to building the row).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        &self,
        arena: &TraceArena,
        resolver: Resolver<'_>,
        core_of: Vec<CoreId>,
        sections_hosted: &[usize],
        noc: NocStats,
        forced_stall_releases: u64,
        check: Option<Box<CheckReport>>,
    ) -> Result<SimResult, SimError> {
        let timings: Vec<InstTiming> = if self.config.record_timings {
            (0..arena.len())
                .map(|seq| {
                    let section = arena.section(seq);
                    let fd = resolver.fd[seq];
                    let ew = resolver.ew[seq];
                    let complete = resolver.complete[seq];
                    let ret = resolver.ret[seq];
                    if fd == UNKNOWN || ew == UNKNOWN || ret == UNKNOWN || complete >= INCOMPLETE {
                        return Err(SimError::Diverged {
                            reason: "left an instruction unresolved",
                            cycle: resolver.max_ret,
                            resolved: resolver.resolved as u64,
                            instructions: arena.len() as u64,
                        });
                    }
                    // `rr`/`ar`/`ma` are derived, not stored: renaming is
                    // the cycle after fetch, address-rename the cycle
                    // after execute, and the memory access completes the
                    // value.
                    let is_mem = arena.is_load(seq) || arena.is_store(seq);
                    Ok(InstTiming {
                        seq,
                        index_in_section: arena.index_in_section(seq),
                        ip: arena.ip(seq),
                        mnemonic: arena.mnemonic(seq),
                        section,
                        core: core_of[section.0],
                        fd,
                        rr: fd + 1,
                        ew,
                        ar: is_mem.then(|| ew + 1),
                        ma: is_mem.then_some(complete),
                        ret,
                    })
                })
                .collect::<Result<_, _>>()?
        } else {
            Vec::new()
        };

        let instructions = arena.len() as u64;
        let fetch_cycles = resolver.max_fd;
        let total_cycles = resolver.max_ret;
        let mut used: Vec<CoreId> = core_of.clone();
        used.sort();
        used.dedup();
        let stats = SimStats {
            instructions,
            sections: arena.sections().len(),
            cores_used: used.len(),
            fetch_cycles,
            total_cycles,
            fetch_ipc: if fetch_cycles == 0 {
                0.0
            } else {
                instructions as f64 / fetch_cycles as f64
            },
            retire_ipc: if total_cycles == 0 {
                0.0
            } else {
                instructions as f64 / total_cycles as f64
            },
            remote_register_requests: resolver.remote_register_requests,
            remote_memory_requests: resolver.remote_memory_requests,
            fork_copied_sources: resolver.fork_copied_sources,
            dmh_accesses: resolver.dmh_accesses,
            forced_stall_releases,
            peak_sections_per_core: sections_hosted.iter().copied().max().unwrap_or(0),
            trace_arena_bytes: arena.memory_bytes() as u64,
            noc,
        };

        if let Some(bounds) = check.as_ref().and_then(|report| report.bounds.as_ref()) {
            // The static analyzer's critical path is a configuration-
            // independent lower bound on the retirement span; an engine
            // undercutting it has an optimistic-timing bug.
            debug_assert!(
                stats.total_cycles >= bounds.critical_path,
                "total_cycles {} undercuts the static critical path {}",
                stats.total_cycles,
                bounds.critical_path
            );
        }

        Ok(SimResult {
            outputs: arena.outputs().to_vec(),
            timings,
            timings_recorded: self.config.record_timings,
            sections: arena.sections().to_vec(),
            core_of,
            stats,
            check,
        })
    }

    /// Delegates the section-to-core assignment to the configured
    /// [`crate::PlacementPolicy`] and validates its output. Policies that
    /// ask for them get the trace's cross-section dependences.
    fn place(&self, arena: &TraceArena) -> Result<Vec<CoreId>, SimError> {
        let sections = arena.sections();
        let chip = self.config.chip_view();
        let core_of = if self.config.placement.wants_dependences() {
            let deps = crate::SectionDeps::from_arena(sections.len(), arena);
            self.config
                .placement
                .assign_with_deps(sections, &chip, &deps)
        } else {
            self.config.placement.assign(sections, &chip)
        };
        if core_of.len() != sections.len() {
            return Err(SimError::Config(format!(
                "placement policy '{}' assigned {} cores for {} sections",
                self.config.placement.name(),
                core_of.len(),
                sections.len()
            )));
        }
        if let Some(bad) = core_of.iter().find(|c| c.0 >= self.config.cores) {
            return Err(SimError::Config(format!(
                "placement policy '{}' chose {bad} on a {}-core chip",
                self.config.placement.name(),
                self.config.cores
            )));
        }
        Ok(core_of)
    }
}

enum Resolution {
    Resolved,
    WaitingOn(usize),
}

/// The dependence-resolution engine shared by the event-driven and the
/// reference simulators.
///
/// Stage timestamps are pure functions of the fetch cycles and the
/// producers' completion cycles, so resolution runs ahead of the clock:
/// [`Resolver::drain`] computes every timestamp that has become computable
/// and parks the rest on producer→consumer wake-up lists — no instruction
/// is ever rescanned while its inputs are still unknown.
///
/// The always-resident per-instruction state is **one** tagged `u64`
/// column plus two `u32` wake-list links (16 B/instruction): the
/// `complete` column holds `INCOMPLETE | fetch_cycle` between fetch and
/// resolution and the completion cycle after, `rr` is always `fd + 1`,
/// `ar` always `ew + 1`, and `ma` always the completion cycle of a memory
/// instruction. The `fd`/`ew`/`ret` stage columns (another
/// 24 B/instruction) are only kept when the run records the per-row stage
/// table; stats-only runs skip them and accumulate `max_fd`/`max_ret`
/// streaming. Retirement is in order within a section, so it needs no
/// per-instruction bookkeeping either: a per-*section* cursor
/// (`retire_next`, `retire_last`) cascades over the completed prefix of
/// the section.
pub(crate) struct Resolver<'a> {
    config: &'a SimConfig,
    arena: &'a TraceArena,
    /// Whether the per-instruction stage columns (`fd`/`ew`/`ret`) are
    /// kept for the reported timing table.
    record: bool,
    pub(crate) fd: Vec<u64>,
    pub(crate) ew: Vec<u64>,
    pub(crate) ret: Vec<u64>,
    pub(crate) complete: Vec<u64>,
    /// Head of the per-producer list of consumers waiting for its
    /// completion (`u32::MAX` = empty). An instruction waits on at most
    /// one producer at a time, so one `waiter_next` link per instruction
    /// threads every list — no per-wait allocation.
    waiter_head: Vec<u32>,
    /// Next consumer in the same producer's waiting list.
    waiter_next: Vec<u32>,
    /// Per-section retirement cursor: the next trace index to retire.
    retire_next: Vec<u32>,
    /// Per-section retirement cursor: the previous retirement cycle.
    retire_last: Vec<u64>,
    /// Instructions ready for a resolution attempt (newly fetched, or
    /// woken by a completion discovered in the current drain round).
    queue: Vec<u32>,
    /// Scratch for the drain's batched rounds.
    batch: Vec<u32>,
    /// Latest fetch cycle seen (streaming `SimStats::fetch_cycles`).
    pub(crate) max_fd: u64,
    /// Latest retirement cycle seen (streaming `SimStats::total_cycles`).
    pub(crate) max_ret: u64,
    pub(crate) resolved: usize,
    pub(crate) remote_register_requests: u64,
    pub(crate) remote_memory_requests: u64,
    pub(crate) fork_copied_sources: u64,
    pub(crate) dmh_accesses: u64,
}

/// Empty wake-list link.
const NO_WAITER: u32 = u32::MAX;

impl<'a> Resolver<'a> {
    pub(crate) fn new(config: &'a SimConfig, arena: &'a TraceArena, n: usize) -> Resolver<'a> {
        let record = config.record_timings;
        let sections = arena.sections();
        Resolver {
            config,
            arena,
            record,
            fd: if record { vec![UNKNOWN; n] } else { Vec::new() },
            ew: if record { vec![UNKNOWN; n] } else { Vec::new() },
            ret: if record { vec![UNKNOWN; n] } else { Vec::new() },
            complete: vec![UNKNOWN; n],
            waiter_head: vec![NO_WAITER; n],
            waiter_next: vec![NO_WAITER; n],
            retire_next: sections.iter().map(|s| s.start as u32).collect(),
            retire_last: vec![0; sections.len()],
            queue: Vec::new(),
            batch: Vec::new(),
            max_fd: 0,
            max_ret: 0,
            resolved: 0,
            remote_register_requests: 0,
            remote_memory_requests: 0,
            fork_copied_sources: 0,
            dmh_accesses: 0,
        }
    }

    /// Records the fetch of `seq` at `cycle` and queues it for resolution.
    pub(crate) fn fetch(&mut self, seq: usize, cycle: u64) {
        debug_assert_eq!(self.complete[seq], UNKNOWN, "fetched once");
        self.complete[seq] = INCOMPLETE | cycle;
        if self.record {
            self.fd[seq] = cycle;
        }
        if cycle > self.max_fd {
            self.max_fd = cycle;
        }
        self.queue.push(seq as u32);
    }

    /// The completion cycle of `seq`, if already resolved.
    #[inline]
    pub(crate) fn completion(&self, seq: usize) -> Option<u64> {
        match self.complete[seq] {
            cycle if cycle < INCOMPLETE => Some(cycle),
            _ => None,
        }
    }

    /// Latency of one leg (request or response) of a renaming exchange
    /// between the consumer's and the producer's cores, including the
    /// optional per-intermediate-section charge for the backward walk.
    fn request_latency(
        &self,
        network: &Network<SectionId>,
        consumer: CoreId,
        producer: CoreId,
        consumer_section: SectionId,
        producer_section: SectionId,
    ) -> u64 {
        let gap = consumer_section
            .0
            .saturating_sub(producer_section.0)
            .saturating_sub(1) as u64;
        network.latency(consumer, producer) + self.config.per_section_hop * gap
    }

    /// Resolves everything that has become computable, in two decoupled
    /// steps.
    ///
    /// Step 1 (value completion): an instruction's result becomes
    /// available as soon as its own sources are — it does *not* wait for
    /// older instructions of its section to retire. This is the
    /// out-of-order execute/memory behaviour of the paper's core.
    ///
    /// Step 2 (retirement): retirement is in order within a section, so
    /// the retire cycle additionally waits for the previous instruction's
    /// retire cycle; a per-section cursor cascades over the completed
    /// prefix ([`Resolver::advance_retirement`]).
    ///
    /// The drain is **batched**: each round takes the whole pending set —
    /// the cycle's fetches first, then the consumers woken by the
    /// previous round's completions, grouped instead of chased one
    /// wake-edge at a time — sorts it, and sweeps each instruction's
    /// packed 16-byte dep slice in ascending trace order, so one round is
    /// one forward pass over the dep column rather than a pointer chase
    /// across it. Completion cycles are pure functions of the inputs, so
    /// batching changes the discovery order but never a computed cycle.
    ///
    /// Every newly computed completion is appended to `completions` as
    /// `(seq, completion_cycle)` so the event-driven scheduler can wake
    /// fetch stages stalled on that value.
    pub(crate) fn drain(
        &mut self,
        network: &Network<SectionId>,
        core_of: &[CoreId],
        completions: &mut Vec<(usize, u64)>,
    ) {
        while !self.queue.is_empty() {
            let mut batch = std::mem::take(&mut self.batch);
            std::mem::swap(&mut self.queue, &mut batch);
            batch.sort_unstable();
            for &seq in &batch {
                let seq = seq as usize;
                match self.resolve_one(seq, network, core_of, completions) {
                    Resolution::Resolved => {
                        // Wake value consumers: they join the next round's
                        // batch instead of being resolved depth-first.
                        let mut waiter = std::mem::replace(&mut self.waiter_head[seq], NO_WAITER);
                        while waiter != NO_WAITER {
                            self.queue.push(waiter);
                            waiter = std::mem::replace(
                                &mut self.waiter_next[waiter as usize],
                                NO_WAITER,
                            );
                        }
                        self.advance_retirement(seq);
                    }
                    Resolution::WaitingOn(dep) => {
                        self.waiter_next[seq] = self.waiter_head[dep];
                        self.waiter_head[dep] = seq as u32;
                    }
                }
            }
            batch.clear();
            self.batch = batch;
        }
    }

    /// One resolution attempt: a single forward sweep over `seq`'s packed
    /// dep slice. Returns `WaitingOn` at the first incomplete producer
    /// (nothing is committed); on success commits `ew`/completion, the
    /// renaming counters and the completion event.
    fn resolve_one(
        &mut self,
        seq: usize,
        network: &Network<SectionId>,
        core_of: &[CoreId],
        completions: &mut Vec<(usize, u64)>,
    ) -> Resolution {
        let arena = self.arena;
        let tagged = self.complete[seq];
        debug_assert!(
            tagged >= INCOMPLETE && tagged != UNKNOWN,
            "queued instructions are fetched and unresolved"
        );
        let my_fd = tagged & !INCOMPLETE;
        let my_section = arena.section(seq);
        let my_rr = my_fd + 1;
        let my_core = core_of[my_section.0];

        let mut local_remote_reg = 0u64;
        let mut local_fork_copied = 0u64;
        let mut reg_ready = 0u64;
        let mut available_at_fetch = true;
        for dep in arena.reg_sources(seq) {
            let t = match dep.kind() {
                SourceKind::ForkCopy => {
                    local_fork_copied += 1;
                    0
                }
                SourceKind::InitialRegister | SourceKind::InitialMemory => 0,
                SourceKind::Local { producer } => match self.complete[producer] {
                    c if c >= INCOMPLETE => return Resolution::WaitingOn(producer),
                    c => {
                        if c > my_fd {
                            available_at_fetch = false;
                        }
                        c
                    }
                },
                SourceKind::Remote {
                    producer,
                    producer_section,
                } => {
                    available_at_fetch = false;
                    let c = match self.complete[producer] {
                        c if c >= INCOMPLETE => return Resolution::WaitingOn(producer),
                        c => c,
                    };
                    local_remote_reg += 1;
                    let hop = self.request_latency(
                        network,
                        my_core,
                        core_of[producer_section.0],
                        my_section,
                        producer_section,
                    );
                    c.max(my_rr + hop) + hop
                }
            };
            reg_ready = reg_ready.max(t);
        }

        let is_mem = arena.is_load(seq) || arena.is_store(seq);
        let my_ew = if !is_mem && available_at_fetch && reg_ready <= my_fd {
            // Computed directly in the fetch-decode stage.
            my_fd
        } else {
            reg_ready.max(my_rr) + 1
        };

        let mut local_remote_mem = 0u64;
        let mut local_dmh = 0u64;
        let completion = if is_mem {
            let a = my_ew + 1;
            let mut mem_ready = a + 1;
            for dep in arena.mem_sources(seq) {
                let t = match dep.kind() {
                    SourceKind::InitialMemory => {
                        local_dmh += 1;
                        a + self.config.dmh_latency
                    }
                    SourceKind::Local { producer } => match self.complete[producer] {
                        c if c >= INCOMPLETE => return Resolution::WaitingOn(producer),
                        c => c.max(a + 1),
                    },
                    SourceKind::Remote {
                        producer,
                        producer_section,
                    } => {
                        let c = match self.complete[producer] {
                            c if c >= INCOMPLETE => return Resolution::WaitingOn(producer),
                            c => c,
                        };
                        local_remote_mem += 1;
                        let hop = self.request_latency(
                            network,
                            my_core,
                            core_of[producer_section.0],
                            my_section,
                            producer_section,
                        );
                        c.max(a + hop) + hop
                    }
                    SourceKind::ForkCopy | SourceKind::InitialRegister => a + 1,
                };
                mem_ready = mem_ready.max(t);
            }
            // `ar`/`ma` are derived at reporting time: `ar` is `ew + 1`
            // and `ma` is this completion cycle.
            mem_ready
        } else {
            my_ew
        };

        if self.record {
            self.ew[seq] = my_ew;
        }
        self.complete[seq] = completion;
        self.remote_register_requests += local_remote_reg;
        self.remote_memory_requests += local_remote_mem;
        self.fork_copied_sources += local_fork_copied;
        self.dmh_accesses += local_dmh;
        completions.push((seq, completion));
        Resolution::Resolved
    }

    /// Step 2 of dependence resolution: in-order retirement within a
    /// section. When `seq` is its section's next-to-retire, retires it
    /// and cascades over the already-complete successors — each retired
    /// instruction's cycle is `max(completion, previous retirement) + 1`.
    /// The cascade replaces per-instruction successor bookkeeping with a
    /// per-section cursor and feeds the streaming `max_ret` accumulator.
    fn advance_retirement(&mut self, seq: usize) {
        let sid = self.arena.section(seq).0;
        if self.retire_next[sid] as usize != seq {
            return;
        }
        let end = self.arena.sections()[sid].end;
        let mut cursor = seq;
        let mut last = self.retire_last[sid];
        while cursor < end {
            let completion = self.complete[cursor];
            if completion >= INCOMPLETE {
                break;
            }
            last = completion.max(last) + 1;
            if self.record {
                self.ret[cursor] = last;
            }
            self.resolved += 1;
            cursor += 1;
        }
        self.retire_next[sid] = cursor as u32;
        self.retire_last[sid] = last;
        if last > self.max_ret {
            self.max_ret = last;
        }
    }
}

/// Whether a control instruction can be computed by the fetch-decode stage
/// at fetch time: all of its register/flags sources are already full in the
/// local register file (fork-copied, initial, or produced locally and
/// complete no later than the fetch cycle). The `complete` column's
/// incomplete encodings (`UNKNOWN`, `INCOMPLETE | fd`) both sit at or
/// above 2^63 — far past any reachable fetch cycle — so the one
/// comparison below covers them without unpacking.
pub(crate) fn fetch_computable(
    arena: &TraceArena,
    seq: usize,
    complete: &[u64],
    fetch_cycle: u64,
) -> bool {
    if arena.is_load(seq) || arena.is_store(seq) {
        return false;
    }
    arena.reg_sources(seq).iter().all(|dep| match dep.kind() {
        SourceKind::ForkCopy | SourceKind::InitialRegister | SourceKind::InitialMemory => true,
        SourceKind::Local { producer } => complete[producer] <= fetch_cycle,
        SourceKind::Remote { .. } => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format_figure10;
    use crate::section::tests::sum_fork_program;

    fn sim_sum(data: &[u64], config: SimConfig) -> SimResult {
        let program = sum_fork_program(data);
        ManyCoreSim::new(config).run(&program).expect("simulates")
    }

    #[test]
    fn sum_of_five_reproduces_the_papers_shape() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert_eq!(result.outputs, vec![21]);
        assert_eq!(result.stats.sections, 6);
        assert_eq!(result.stats.instructions, 50);
        // The paper's Figure 10 fetches the 45 sum instructions in 30
        // cycles and retires them by cycle 43; our run adds a 5-instruction
        // main wrapper, so allow a modest band around those values.
        assert!(
            (25..=45).contains(&result.stats.fetch_cycles),
            "fetch span {} outside the expected band",
            result.stats.fetch_cycles
        );
        assert!(
            (35..=90).contains(&result.stats.total_cycles),
            "retire span {} outside the expected band",
            result.stats.total_cycles
        );
        assert!(result.stats.fetch_ipc > 1.0);
        // The first instruction is fetched at cycle 1 on the root core.
        assert_eq!(result.timings[0].fd, 1);
    }

    #[test]
    fn validated_runs_attach_identical_reports_on_both_engines() {
        let program = sum_fork_program(&[4, 2, 6, 4, 5]);
        let sim = ManyCoreSim::new(SimConfig::with_cores(8).validated());
        let validated = sim.run(&program).expect("simulates");
        let reference = sim.run_reference(&program).expect("simulates");
        assert_eq!(validated, reference);
        let report = validated.check.as_ref().expect("validated run");
        assert!(report.is_clean());
        assert!(report.drain.is_certified());
        let bounds = report.bounds.as_ref().expect("clean arenas are bounded");
        assert!(
            validated.stats.total_cycles >= bounds.critical_path,
            "{} < {}",
            validated.stats.total_cycles,
            bounds.critical_path
        );
        // The unvalidated run is identical except for the attachment.
        // (Pinned off explicitly: the default tracks PARSECS_VALIDATE.)
        let mut off = SimConfig::with_cores(8);
        off.validate = false;
        let mut plain = ManyCoreSim::new(off).run(&program).expect("simulates");
        assert!(plain.check.is_none());
        plain.check = validated.check.clone();
        assert_eq!(plain, validated);
    }

    #[test]
    fn validation_rejects_corrupt_arenas_with_a_typed_report() {
        use parsecs_trace::PackedDep;
        // A record claiming a producer at or past itself: a dependence
        // cycle the validator must catch before the engines run.
        let mut arena = TraceArena::new();
        let id = arena.intern_mnemonic("bogus");
        arena.begin_record(0, id, SectionId(0), TraceKind::Other, false, false, false);
        arena.push_dep(PackedDep::from_raw_parts(1, 0, 0));
        arena.end_record(1);
        arena.push_section(SectionSpan {
            id: SectionId(0),
            start: 0,
            end: 1,
            creator: None,
            start_ip: 0,
        });
        let sim = ManyCoreSim::new(SimConfig::with_cores(2).validated());
        let err = sim.simulate_arena(&arena).expect_err("must be rejected");
        match err {
            SimError::Invariant(report) => {
                assert!(!report.is_clean());
                assert!(matches!(
                    report.first_violation(),
                    Some(parsecs_check::InvariantViolation::DependenceCycle { .. })
                ));
            }
            other => panic!("expected an invariant error, got {other}"),
        }
    }

    #[test]
    fn stage_cycles_are_monotone_within_an_instruction() {
        let result = sim_sum(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3], SimConfig::with_cores(16));
        for t in &result.timings {
            assert!(t.rr > t.fd, "{}: rr after fd", t.name());
            assert!(t.ew >= t.fd, "{}: ew at or after fd", t.name());
            if let (Some(a), Some(m)) = (t.ar, t.ma) {
                assert!(a > t.ew, "{}: ar after ew", t.name());
                assert!(m > a, "{}: ma after ar", t.name());
            }
            assert!(t.ret > t.ew, "{}: retire after execute", t.name());
        }
    }

    #[test]
    fn fetch_is_one_instruction_per_core_per_cycle() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        let mut per_core_cycle: HashMap<(CoreId, u64), u64> = HashMap::new();
        for t in &result.timings {
            *per_core_cycle.entry((t.core, t.fd)).or_insert(0) += 1;
        }
        assert!(per_core_cycle.values().all(|c| *c == 1));
    }

    /// Regression for the old O(total instructions) filter scan:
    /// `section_timings` must hand back the section's contiguous span of
    /// the sequential table, covering every row exactly once even on a
    /// many-section trace.
    #[test]
    fn section_timings_slices_the_contiguous_span() {
        let data: Vec<u64> = (1..=40).collect();
        let result = sim_sum(&data, SimConfig::with_cores(16));
        assert!(
            result.sections.len() > 30,
            "want a many-section trace, got {}",
            result.sections.len()
        );
        let mut covered = 0usize;
        for span in &result.sections {
            let timings = result.section_timings(span.id);
            assert_eq!(timings.len(), span.len(), "{}", span.id);
            assert!(timings.iter().all(|t| t.section == span.id));
            assert_eq!(timings.first().map(|t| t.seq), Some(span.start));
            covered += timings.len();
        }
        assert_eq!(covered, result.timings.len());
        // A stats-only run has no rows to slice — empty view, no panic.
        let stats = sim_sum(&data, SimConfig::with_cores(16).stats_only());
        assert!(stats.section_timings(SectionId(0)).is_empty());
        // An id past the run's sections yields an empty view (the old
        // filter scan's behaviour), not a panic.
        assert!(result
            .section_timings(SectionId(result.sections.len()))
            .is_empty());
    }

    /// The tentpole contract of stats-only mode: every aggregate in
    /// `SimStats` is accumulated streaming and comes out bit-identical to
    /// the recording run, on both engines, with no stage table built.
    #[test]
    fn stats_only_matches_full_mode_statistics_bit_for_bit() {
        let data: Vec<u64> = (1..=24).collect();
        let program = sum_fork_program(&data);
        for cores in [1, 4, 16] {
            let full_sim = ManyCoreSim::new(SimConfig::with_cores(cores));
            let stats_sim = ManyCoreSim::new(SimConfig::with_cores(cores).stats_only());
            let full = full_sim.run(&program).expect("full-mode simulates");
            let stats = stats_sim.run(&program).expect("stats-only simulates");
            let stats_reference = stats_sim
                .run_reference(&program)
                .expect("stats-only reference simulates");
            assert_eq!(stats, stats_reference, "engines diverge stats-only");
            assert_eq!(
                stats.stats, full.stats,
                "aggregates diverge at {cores} cores"
            );
            assert_eq!(stats.outputs, full.outputs);
            assert_eq!(stats.sections, full.sections);
            assert_eq!(stats.core_of, full.core_of);
            assert!(stats.timings.is_empty() && !stats.timings_recorded);
            assert!(full.timings_recorded);
            assert!(stats.sim_state_bytes() < full.sim_state_bytes());
        }
    }

    /// Both engines, both stats modes, zero instructions: the streaming
    /// accumulators and the post-hoc table derivation must agree that
    /// everything is zero (the old `unwrap_or(0)` fallback path).
    #[test]
    fn empty_traces_simulate_to_zeroed_stats_everywhere() {
        let empty = crate::StreamingSectioner::new()
            .finish(vec![])
            .expect("fits");
        let full_sim = ManyCoreSim::new(SimConfig::with_cores(4));
        let stats_sim = ManyCoreSim::new(SimConfig::with_cores(4).stats_only());
        let full = full_sim.simulate_arena(&empty).expect("simulates");
        assert_eq!(
            full,
            full_sim
                .simulate_arena_reference(&empty)
                .expect("simulates")
        );
        let stats = stats_sim.simulate_arena(&empty).expect("simulates");
        assert_eq!(
            stats,
            stats_sim
                .simulate_arena_reference(&empty)
                .expect("simulates")
        );
        assert_eq!(full.stats, stats.stats);
        assert_eq!(full.stats.instructions, 0);
        assert_eq!(full.stats.fetch_cycles, 0);
        assert_eq!(full.stats.total_cycles, 0);
        assert_eq!(full.stats.fetch_ipc, 0.0);
        assert_eq!(full.stats.retire_ipc, 0.0);
        assert_eq!(full.stats.forced_stall_releases, 0);
        assert!(full.timings.is_empty() && full.timings_recorded);
        assert!(full.outputs.is_empty());
        assert_eq!(full.total_bytes_per_instruction(), 0.0);
    }

    #[test]
    fn retirement_is_in_order_within_a_section() {
        let result = sim_sum(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], SimConfig::with_cores(16));
        for span in &result.sections {
            let timings = result.section_timings(span.id);
            for pair in timings.windows(2) {
                assert!(
                    pair[1].ret > pair[0].ret,
                    "retirement must be in order within {}",
                    span.id
                );
                assert!(
                    pair[1].fd > pair[0].fd,
                    "fetch must be in order within {}",
                    span.id
                );
            }
        }
    }

    #[test]
    fn remote_operands_are_charged_noc_latency() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert!(
            result.stats.remote_register_requests >= 2,
            "each resume waits for %rax"
        );
        assert!(
            result.stats.remote_memory_requests >= 1,
            "the final sum reads a remote stack word"
        );
        assert!(result.stats.fork_copied_sources > 0);
        assert_eq!(
            result.stats.dmh_accesses, 5,
            "five array elements come from the loader"
        );
    }

    #[test]
    fn more_cores_do_not_slow_the_run_down() {
        let data: Vec<u64> = (1..=40).collect();
        let few = sim_sum(&data, SimConfig::with_cores(2));
        let many = sim_sum(&data, SimConfig::with_cores(64));
        assert_eq!(few.outputs, many.outputs);
        assert!(many.stats.fetch_cycles <= few.stats.fetch_cycles);
        assert!(many.stats.fetch_ipc >= few.stats.fetch_ipc);
    }

    #[test]
    fn single_core_still_works_and_is_slower() {
        let data: Vec<u64> = (1..=20).collect();
        let one = sim_sum(&data, SimConfig::with_cores(1));
        let many = sim_sum(&data, SimConfig::with_cores(32));
        assert_eq!(one.outputs, vec![210]);
        assert!(one.stats.fetch_cycles >= many.stats.fetch_cycles);
        assert_eq!(one.stats.cores_used, 1);
    }

    #[test]
    fn least_loaded_placement_balances_instructions() {
        let data: Vec<u64> = (1..=40).collect();
        let config = SimConfig::with_cores(4).with_placement(crate::Placement::LeastLoaded);
        let result = sim_sum(&data, config);
        let mut per_core = vec![0usize; 4];
        for (sid, core) in result.core_of.iter().enumerate() {
            per_core[core.0] += result.sections[sid].len();
        }
        let max = *per_core.iter().max().unwrap();
        let min = *per_core.iter().filter(|c| **c > 0).min().unwrap();
        assert!(max <= min * 3, "placement should spread work: {per_core:?}");
    }

    #[test]
    fn call_based_program_runs_on_one_section() {
        let program = parsecs_asm::assemble(
            "main: movq $6, %rdi
                   call fact
                   out  %rax
                   halt
             fact: movq $1, %rax
                   movq %rdi, %rcx
             loop: imulq %rcx, %rax
                   subq $1, %rcx
                   jne loop
                   ret",
        )
        .unwrap();
        let result = ManyCoreSim::new(SimConfig::with_cores(4))
            .run(&program)
            .unwrap();
        assert_eq!(result.outputs, vec![720]);
        assert_eq!(result.stats.sections, 1);
        assert_eq!(result.stats.cores_used, 1);
        assert!(
            result.stats.fetch_ipc <= 1.0,
            "a single section fetches at most 1 IPC"
        );
    }

    #[test]
    fn invalid_configuration_is_reported() {
        let program = sum_fork_program(&[1, 2, 3]);
        let err = ManyCoreSim::new(SimConfig::with_cores(0))
            .run(&program)
            .unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn figure10_table_lists_every_instruction_grouped_by_core() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        let table = format_figure10(&result);
        assert!(table.contains("core0 pipeline"));
        assert!(table.contains("fork"));
        assert!(table.contains("endfork"));
        let instruction_rows = table
            .lines()
            .filter(|l| {
                l.trim_start()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit())
            })
            .count();
        assert_eq!(instruction_rows, result.timings.len());
    }

    #[test]
    fn per_section_hop_penalty_increases_latency() {
        let data: Vec<u64> = (1..=20).collect();
        let base = sim_sum(&data, SimConfig::with_cores(8));
        let mut slow_cfg = SimConfig::with_cores(8);
        slow_cfg.per_section_hop = 10;
        let slow = sim_sum(&data, slow_cfg);
        assert_eq!(base.outputs, slow.outputs);
        assert!(slow.stats.total_cycles >= base.stats.total_cycles);
    }

    #[test]
    fn disabling_fetch_stalls_never_slows_fetch() {
        let data: Vec<u64> = (1..=20).collect();
        let mut cfg = SimConfig::with_cores(8);
        cfg.fetch_stalls_on_unresolved_control = false;
        let ideal = sim_sum(&data, cfg);
        let real = sim_sum(&data, SimConfig::with_cores(8));
        assert!(ideal.stats.fetch_cycles <= real.stats.fetch_cycles);
    }

    #[test]
    fn well_formed_runs_never_need_forced_stall_releases() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert_eq!(result.stats.forced_stall_releases, 0);
    }

    /// The scenario that used to drive the retired force-release
    /// heuristic: forked leaves bump shared counters through a
    /// load–conditional–store whose conditional depends on the *loaded*
    /// value, so a leaf's fetch stage waits on the previous writer of the
    /// same word — wherever on the chip (or how deep in a core's queue)
    /// that writer is. Under the handoff model the stalled section parks,
    /// the core keeps fetching the producers, and an explicit requeue
    /// event resumes it: the detector stays silent on every chip shape.
    #[test]
    fn contended_writer_chains_park_and_resume_without_forced_releases() {
        let program = parsecs_asm::assemble(
            "w:     .quad 0, 0
main:   fork t0
        fork t1
        fork t2
        fork t3
        movq $w, %rcx
        movq 0(%rcx), %rax
        addq 8(%rcx), %rax
        out  %rax
        halt
t0:     movq $w, %rcx
        movq 0(%rcx), %rax
        cmpq $0, %rax
        je .a0
.a0:    addq $1, %rax
        movq %rax, 0(%rcx)
        movq 8(%rcx), %rbx
        cmpq $0, %rbx
        je .b0
.b0:    addq $3, %rbx
        movq %rbx, 8(%rcx)
        endfork
t1:     movq $w, %rcx
        movq 8(%rcx), %rax
        cmpq $0, %rax
        je .a1
.a1:    addq $1, %rax
        movq %rax, 8(%rcx)
        endfork
t2:     movq $w, %rcx
        movq 0(%rcx), %rax
        cmpq $0, %rax
        je .a2
.a2:    addq $5, %rax
        movq %rax, 0(%rcx)
        endfork
t3:     movq $w, %rcx
        movq 8(%rcx), %rax
        cmpq $0, %rax
        je .a3
.a3:    addq $7, %rax
        movq %rax, 8(%rcx)
        endfork",
        )
        .expect("assembles");
        let mut configs = vec![
            SimConfig::with_cores(1),
            SimConfig::with_cores(2),
            SimConfig::with_cores(5),
        ];
        let mut tight = SimConfig::with_cores(2);
        tight.max_sections_per_core = 1;
        tight.noc.link_bandwidth = Some(1);
        configs.push(tight);
        let mut slow = SimConfig::with_cores(4);
        slow.topology = Some(parsecs_noc::Topology::mesh(2, 2));
        slow.noc.base_latency = 9;
        slow.noc.per_hop_latency = 5;
        configs.push(slow);
        for config in configs {
            let sim = ManyCoreSim::new(config);
            let event = sim.run(&program).expect("simulates");
            let reference = sim.run_reference(&program).expect("reference simulates");
            assert_eq!(event, reference, "{:?}", sim.config());
            // 0+1+5 = 6 and 0+3+1+7 = 11.
            assert_eq!(event.outputs, vec![17], "{:?}", sim.config());
            assert_eq!(
                event.stats.forced_stall_releases,
                0,
                "the detector fired under {:?}",
                sim.config()
            );
        }
    }

    /// The tentpole contract: the event-driven engine and the retained
    /// cycle-stepping reference produce bit-identical results — the same
    /// per-instruction stage table, the same statistics, the same NoC
    /// counters — across workloads, chip sizes and configurations.
    #[test]
    fn event_driven_engine_matches_the_reference_bit_for_bit() {
        let data: Vec<u64> = (1..=40).collect();
        let program = sum_fork_program(&data);
        for cores in [1, 2, 3, 8, 64] {
            for placement_config in [
                SimConfig::with_cores(cores),
                SimConfig::with_cores(cores).with_placement(crate::Placement::LeastLoaded),
                SimConfig::with_cores(cores).with_placement(crate::LoadAware),
            ] {
                let sim = ManyCoreSim::new(placement_config);
                let event = sim.run(&program).expect("event-driven simulates");
                let reference = sim.run_reference(&program).expect("reference simulates");
                assert_eq!(
                    event,
                    reference,
                    "engines diverge at {cores} cores with {}",
                    sim.config().placement.name()
                );
            }
        }
    }

    #[test]
    fn engines_agree_under_hostile_configurations() {
        let data: Vec<u64> = (1..=24).collect();
        let program = sum_fork_program(&data);
        let mut configs = Vec::new();
        let mut bandwidth = SimConfig::with_cores(4);
        bandwidth.noc.link_bandwidth = Some(1);
        configs.push(bandwidth);
        let mut slow_noc = SimConfig::with_cores(6);
        slow_noc.noc.base_latency = 3;
        slow_noc.noc.per_hop_latency = 7;
        slow_noc.topology = Some(parsecs_noc::Topology::mesh(2, 3));
        configs.push(slow_noc);
        let mut tight = SimConfig::with_cores(3);
        tight.max_sections_per_core = 1;
        tight.per_section_hop = 4;
        configs.push(tight);
        let mut no_stall = SimConfig::with_cores(8);
        no_stall.fetch_stalls_on_unresolved_control = false;
        no_stall.dmh_latency = 9;
        configs.push(no_stall);
        for config in configs {
            let sim = ManyCoreSim::new(config);
            let event = sim.run(&program).expect("event-driven simulates");
            let reference = sim.run_reference(&program).expect("reference simulates");
            assert_eq!(event, reference, "{:?}", sim.config());
        }
    }
}
