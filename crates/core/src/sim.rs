//! The many-core timing simulator (orchestrator).
//!
//! The simulator models the paper's execution as two coupled layers:
//!
//! 1. a *functional* layer — [`SectionedTrace`] runs the program, splits it
//!    into sections and resolves every producer/consumer pair; and
//! 2. a *timing* layer — this crate places sections on cores and advances
//!    the chip: every core fetches one instruction per cycle along its
//!    current section (computing control in the fetch stage rather than
//!    predicting it), section-creation messages travel over the NoC,
//!    remote operands are obtained through renaming requests charged with
//!    the NoC latency, memory instructions go through the address-rename
//!    and memory-access stages, and each section retires in order.
//!
//! The timing layer is split into focused modules:
//!
//! * [`crate::chip`] — chip-wide per-core state as struct-of-arrays
//!   columns, the intrusive ready queues and the stall-handoff table;
//! * [`crate::cluster`] — the per-cluster calendar queue, run list and
//!   the fetch-decode walk over disjoint column windows;
//! * [`crate::drain`] — the batched completion drain (with its optional
//!   forked compute pass);
//! * this module — the orchestrator: the event loop that advances the
//!   clock, routes NoC deliveries and stall requeues to clusters, forks
//!   the walk and the drain over the scoped pool when enabled, and
//!   assembles the [`SimResult`].
//!
//! The engine is **event-driven**: instead of stepping the chip one cycle
//! at a time and rescanning every core, each cluster keeps a two-level
//! calendar queue of per-core wake-up events (next fetch, section
//! dequeue, stall release) plus the NoC's next message arrival
//! ([`parsecs_noc::Network::next_arrival`]) and the pending stall-handoff
//! requeue events, and the clock jumps straight to the earliest event
//! across all clusters. Dependence resolution uses producer→consumer
//! wake-up lists, so a queued instruction is touched only when one of its
//! inputs completes.
//!
//! **Parallel execution.** With [`SimConfig::threads`] above one, the
//! cores are partitioned into one cluster per thread and the per-cycle
//! fetch walk and large drain rounds fork over a scoped pool
//! (`parsecs-pool`), exchanging NoC arrivals at the sequential
//! cycle-top barrier. The fork is gated on **two** static certificates:
//! the arena's drain certificate (`parsecs-check` returned a clean
//! report with [`DrainSafety::Certified`]) and the walk certificate
//! ([`crate::WalkSafety::Certified`] for the concrete cluster
//! partition). Either being withheld makes the run take the sequential
//! single-cluster path and record a typed
//! [`ForkFallback`] on [`SimResult::fork_fallback`] — never a silent
//! fallback. Both paths execute the same walk and drain code over the
//! same state in the same order, so threaded results are bit-identical
//! to sequential ones (asserted by the differential suites).
//!
//! Fetch stalls follow the **in-order handoff model** (shared with the
//! reference loop through [`crate::chip::StallTable`]): a control
//! instruction whose sources are not full stalls the fetch stage. If the
//! stall's release cycle is already known, the section keeps the fetch
//! slot and resumes right after that cycle. If the release is *unknown*,
//! the section **parks** and hands the core back to its queued sections;
//! when the completion is discovered, an explicit requeue event puts the
//! parked section back on its core's ready queue at the modeled release
//! cycle. Every stall therefore has a modeled release event and
//! well-formed traces never deadlock; [`SimStats::forced_stall_releases`]
//! remains only as a deadlock *detector*.
//!
//! The original cycle-stepping loop is retained in
//! [`ManyCoreSim::simulate_reference`] and the two implementations are
//! held bit-identical by differential tests (every [`SimResult`] field,
//! including the per-instruction stage table and all statistics, must
//! match exactly).
//!
//! The output is a per-instruction, per-stage cycle table (Figure 10 of the
//! paper) plus aggregate fetch/retire IPC (§5).

use std::collections::HashMap;
use std::sync::Mutex;

use parsecs_check::{bound_schedule, certify_walk, prove_progress, CheckReport};
use parsecs_isa::Program;
use parsecs_noc::{CoreId, Network, NocStats};
use parsecs_obs::{CoreBreakdown, CycleAttribution, NoopProbe, SimProbe, StallCause, TickGauges};
use parsecs_pool::Pool;
use parsecs_trace::{SourceKind, TraceArena};

use crate::chip::{ChipState, NO_SECTION, NO_STALL};
use crate::cluster::{cluster_windows, partition, schedule, walk_cluster, Cluster, WalkCtx};
use crate::drain::{Resolver, INCOMPLETE, UNKNOWN};
use crate::error::{FallbackReason, ForkFallback};
use crate::{InstTiming, SectionId, SectionSpan, SectionedTrace, SimConfig, SimError, SimStats};

pub(crate) use crate::chip::StallTable;

/// Minimum total run-list population worth forking the fetch walk over
/// the pool; wake-dominated cycles (few acting cores) walk inline.
const WALK_FORK_MIN: usize = 64;

/// The result of one many-core simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Values emitted by `out` instructions during the run.
    pub outputs: Vec<u64>,
    /// Per-instruction stage timings, in sequential order. **Empty when
    /// the run was stats-only** ([`SimConfig::record_timings`] off):
    /// aggregate statistics are then accumulated streaming during the
    /// simulation and the stage table is never materialised.
    pub timings: Vec<InstTiming>,
    /// Whether [`SimResult::timings`] was recorded. `false` for
    /// stats-only runs — which an empty `timings` alone cannot signal,
    /// because an empty *program* also has no rows.
    pub timings_recorded: bool,
    /// The sections of the run, in total order.
    pub sections: Vec<SectionSpan>,
    /// The core hosting each section (indexed by section id).
    pub core_of: Vec<CoreId>,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// The pre-simulation static analysis report (invariants, drain
    /// certificate, critical-path bounds, the placement-aware progress
    /// proof and the partition-agnostic walk certificate) when the run
    /// was validated ([`SimConfig::validate`]); `None` otherwise. Both
    /// engines attach the identical report, so differential bit-identity
    /// covers it.
    pub check: Option<Box<CheckReport>>,
    /// `Some` when the run was asked to fork (`threads > 1`) but a
    /// static certificate was withheld, so it ran sequentially: the
    /// typed reason. `None` when no fork was requested or the fork ran.
    /// The reference engine never forks but computes the identical
    /// verdict, so differential bit-identity covers this field too.
    pub fork_fallback: Option<ForkFallback>,
}

impl SimResult {
    /// The timings of one section, in fetch order: the contiguous
    /// `timings` rows of the section's span (timings are stored in
    /// sequential order and sections tile that order, so this is an O(1)
    /// subslice, not a scan). Empty when the run was stats-only or the
    /// id names no section of this run (matching the old filter scan,
    /// which also produced nothing for an unknown id).
    pub fn section_timings(&self, id: SectionId) -> &[InstTiming] {
        if !self.timings_recorded {
            return &[];
        }
        match self.sections.get(id.0) {
            Some(span) => &self.timings[span.start..span.end],
            None => &[],
        }
    }

    /// Modeled resident bytes of the simulator's own per-run state — the
    /// resolver columns, the per-section cursors (retirement, stall
    /// resume, fork map, placement) and the result views (stage table,
    /// section spans, outputs). The number that, added to
    /// [`SimStats::trace_arena_bytes`], caps how many instructions a
    /// chip-scale run can hold resident; a stats-only run drops the stage
    /// table and three resolver columns, cutting this from ~150 to ~17
    /// bytes per instruction. Derived from logical sizes (transient
    /// scratch like the wake queue and per-core state is excluded), so it
    /// is deterministic across engines.
    pub fn sim_state_bytes(&self) -> u64 {
        use std::mem::size_of;
        let n = self.stats.instructions;
        let sections = self.sections.len() as u64;
        // Tagged completion column + two wake-list links always; the
        // fd/ew/ret stage columns only when timings are recorded.
        let resolver = n * 16 + if self.timings_recorded { n * 24 } else { 0 };
        // Retirement cursors (u32 + u64), stall resume point, one
        // fork→created-section map entry, placement.
        let per_section = sections * (12 + 8 + 24 + 8);
        let views = self.timings.len() as u64 * size_of::<InstTiming>() as u64
            + sections * size_of::<SectionSpan>() as u64
            + self.core_of.len() as u64 * size_of::<CoreId>() as u64
            + self.outputs.len() as u64 * 8;
        resolver + per_section + views
    }

    /// Total resident footprint of the run — trace arena plus simulator
    /// state ([`SimResult::sim_state_bytes`]) — per simulated
    /// instruction.
    pub fn total_bytes_per_instruction(&self) -> f64 {
        if self.stats.instructions == 0 {
            0.0
        } else {
            (self.stats.trace_arena_bytes + self.sim_state_bytes()) as f64
                / self.stats.instructions as f64
        }
    }
}

/// The many-core simulator of the sectioned execution model.
#[derive(Debug, Clone)]
pub struct ManyCoreSim {
    config: SimConfig,
}

/// Everything both engines derive from the configuration before timing
/// starts: the section placement, the freshly created NoC and the
/// fork-site → created-section map.
pub(crate) struct Prepared {
    pub(crate) core_of: Vec<CoreId>,
    pub(crate) network: Network<SectionId>,
    pub(crate) created_by: HashMap<usize, SectionId>,
}

/// Whether the arena's static analysis authorises the parallel drain: a
/// clean report whose drain verdict is `Certified`. Reuses the precheck
/// report when validation already produced one; otherwise runs the full
/// analysis here. Anything short of certified — violations, an
/// unchecked/conflicted drain — answers `false` and the caller records a
/// typed [`ForkFallback`] on the result.
pub(crate) fn drain_fork_certified(arena: &TraceArena, precheck: Option<&CheckReport>) -> bool {
    match precheck {
        // A precheck report exists only for validated runs, which already
        // rejected unclean arenas.
        Some(report) => report.drain.is_certified(),
        None => {
            let report = parsecs_check::check_arena(arena);
            report.is_clean() && report.drain.is_certified()
        }
    }
}

/// Classifies what a stalled control instruction is waiting on, for the
/// [`StallCause`] telemetry axis. `known` says whether the release cycle
/// was already resolved when the stall fired: a stall with an unknown
/// release parks its section and is woken by an explicit NoC-side
/// completion event, so an otherwise-local wait classifies as
/// [`StallCause::NocEjection`]. Register sources win over memory ones
/// (the fetch stage checks them first); [`StallCause::ForkCopy`] is
/// reserved — fork-copied sources are full at fetch by construction, so
/// today's traces never stall on one.
pub(crate) fn stall_cause(arena: &TraceArena, seq: usize, known: bool) -> StallCause {
    let remote_reg = arena
        .reg_sources(seq)
        .iter()
        .any(|dep| matches!(dep.kind(), SourceKind::Remote { .. }));
    if remote_reg {
        StallCause::RemoteRegister
    } else if arena.is_load(seq) || arena.is_store(seq) {
        StallCause::RemoteMemory
    } else if !known {
        StallCause::NocEjection
    } else {
        StallCause::Local
    }
}

impl ManyCoreSim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> ManyCoreSim {
        ManyCoreSim { config }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `program` functionally through the streaming trace pipeline
    /// ([`TraceArena::from_program`]: the machine pushes each retired
    /// instruction into the sectioner, which renames and resolves on the
    /// fly) and simulates its distributed execution with the event-driven
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration and
    /// [`SimError::Machine`] if the functional pre-execution fails.
    pub fn run(&self, program: &Program) -> Result<SimResult, SimError> {
        self.run_probed(program, &mut NoopProbe)
    }

    /// Like [`ManyCoreSim::run`], with a telemetry probe observing the
    /// timing run (see [`ManyCoreSim::simulate_arena_probed`] for the
    /// zero-cost contract). The functional pre-execution is not probed —
    /// probes observe the timing model only.
    ///
    /// # Errors
    ///
    /// Same as [`ManyCoreSim::run`].
    pub fn run_probed<P: SimProbe>(
        &self,
        program: &Program,
        probe: &mut P,
    ) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let arena = TraceArena::from_program(program, self.config.fuel)?;
        self.simulate_arena_probed(&arena, probe)
    }

    /// Like [`ManyCoreSim::run`], but timed by the retained cycle-stepping
    /// reference loop instead of the event-driven engine. The two produce
    /// bit-identical [`SimResult`]s; the reference exists as the oracle
    /// for differential tests and benchmarks.
    ///
    /// # Errors
    ///
    /// Same as [`ManyCoreSim::run`].
    pub fn run_reference(&self, program: &Program) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let arena = TraceArena::from_program(program, self.config.fuel)?;
        self.simulate_arena_reference(&arena)
    }

    /// Simulates an already-sectioned trace with the cycle-stepping
    /// reference loop. Compatibility shim: converts to the arena
    /// representation first; hot callers should hold a [`TraceArena`] and
    /// use [`ManyCoreSim::simulate_arena_reference`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate_reference(&self, trace: &SectionedTrace) -> Result<SimResult, SimError> {
        self.simulate_arena_reference(&trace.to_arena())
    }

    /// Simulates an already-sectioned trace with the event-driven engine.
    /// Compatibility shim: converts to the arena representation first;
    /// hot callers should hold a [`TraceArena`] and use
    /// [`ManyCoreSim::simulate_arena`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate(&self, trace: &SectionedTrace) -> Result<SimResult, SimError> {
        self.simulate_arena(&trace.to_arena())
    }

    /// Simulates an arena-backed trace with the cycle-stepping reference
    /// loop (see [`ManyCoreSim::run_reference`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate_arena_reference(&self, arena: &TraceArena) -> Result<SimResult, SimError> {
        self.simulate_arena_reference_probed(arena, &mut NoopProbe)
    }

    /// Like [`ManyCoreSim::simulate_arena_reference`], with a telemetry
    /// probe observing the run (see
    /// [`ManyCoreSim::simulate_arena_probed`] for the zero-cost
    /// contract).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate_arena_reference_probed<P: SimProbe>(
        &self,
        arena: &TraceArena,
        probe: &mut P,
    ) -> Result<SimResult, SimError> {
        crate::reference::simulate(self, arena, probe)
    }

    /// Simulates an arena-backed trace with the event-driven engine.
    ///
    /// With [`SimConfig::threads`] above one *and* both static
    /// certificates — [`crate::DrainSafety::Certified`] for the arena
    /// and [`crate::WalkSafety::Certified`] for the concrete cluster
    /// partition — the run forks its fetch walk and drain rounds over a
    /// scoped thread pool, bit-identical to the sequential path (see the
    /// module docs). A withheld certificate makes the run sequential and
    /// records the typed reason on [`SimResult::fork_fallback`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate_arena(&self, arena: &TraceArena) -> Result<SimResult, SimError> {
        self.simulate_arena_probed(arena, &mut NoopProbe)
    }

    /// Like [`ManyCoreSim::simulate_arena`], with a telemetry probe
    /// observing the run.
    ///
    /// Probe hooks are monomorphized into the engine and compiled out
    /// entirely for [`NoopProbe`] (`P::ENABLED == false`), so the default
    /// path pays nothing. A probed run produces a [`SimResult`]
    /// bit-identical to the unprobed one — probes observe, they never
    /// steer. Probe hooks fire only at the sequential seams of the event
    /// loop (never inside the forked walk or drain compute), so a probe
    /// needs no synchronisation and per-core event streams are identical
    /// across thread counts and engines; only engine-specific gauges
    /// ([`SimProbe::on_tick`], [`SimProbe::on_walk`],
    /// [`SimProbe::on_drain_round`]) may differ between the event-driven
    /// and reference engines.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate_arena_probed<P: SimProbe>(
        &self,
        arena: &TraceArena,
        probe: &mut P,
    ) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let mut check = self.precheck(arena)?;
        let prepared = self.prepare(arena)?;
        let (clusters, fallback) = self.fork_decision(arena, check.as_deref(), &prepared.core_of);
        self.attach_verdicts(arena, check.as_deref_mut(), &prepared.core_of);
        if clusters > 1 {
            Pool::with(clusters, |pool| {
                self.run_event(
                    arena,
                    prepared,
                    check,
                    clusters,
                    Some(pool),
                    fallback,
                    probe,
                )
            })
        } else {
            self.run_event(arena, prepared, check, 1, None, fallback, probe)
        }
    }

    /// The fork decision both engines share: how many clusters to run
    /// and, when a requested fork was withheld, the typed reason. Checks
    /// the drain certificate first, then certifies the concrete cluster
    /// partition; the reference engine computes the same verdict without
    /// ever forking, keeping [`SimResult`]s bit-identical.
    pub(crate) fn fork_decision(
        &self,
        arena: &TraceArena,
        precheck: Option<&CheckReport>,
        core_of: &[CoreId],
    ) -> (usize, Option<ForkFallback>) {
        let threads = self
            .config
            .effective_threads()
            .min(self.config.cores.max(1));
        if threads <= 1 {
            return (1, None);
        }
        if !drain_fork_certified(arena, precheck) {
            return (
                1,
                Some(ForkFallback {
                    reason: FallbackReason::DrainUncertified,
                }),
            );
        }
        let hosts: Vec<usize> = core_of.iter().map(|c| c.0).collect();
        let windows = cluster_windows(self.config.cores, threads);
        if !certify_walk(self.config.cores, &windows, &hosts).is_certified() {
            return (
                1,
                Some(ForkFallback {
                    reason: FallbackReason::WalkUncertified,
                }),
            );
        }
        (threads, None)
    }

    /// Attaches the configuration-aware verdicts to a validated run's
    /// report, once the placement is known: the progress proof for this
    /// (placement × chip) cell, the NoC/placement-weighted schedule
    /// bounds, and the partition-agnostic walk certificate (the trivial one-window tiling plus every
    /// ready-queue link inside the chip — `cluster_windows` tiles for
    /// *every* cluster count by construction, so certifying the chip
    /// once suffices; the concrete multi-cluster partition is
    /// re-certified by [`ManyCoreSim::fork_decision`]). Deliberately
    /// independent of [`SimConfig::threads`], so runs that differ only
    /// in thread count attach identical reports.
    pub(crate) fn attach_verdicts(
        &self,
        arena: &TraceArena,
        check: Option<&mut CheckReport>,
        core_of: &[CoreId],
    ) {
        if let Some(report) = check {
            let hosts: Vec<usize> = core_of.iter().map(|c| c.0).collect();
            report.progress = Some(prove_progress(
                arena,
                &hosts,
                self.config.cores,
                self.config.max_sections_per_core,
            ));
            report.schedule = Some(bound_schedule(arena, &hosts, &self.config.chip_model()));
            report.walk = certify_walk(
                self.config.cores,
                &cluster_windows(self.config.cores, 1),
                &hosts,
            );
        }
    }

    /// The event-driven engine over `clusters` clusters, optionally
    /// forking the per-cycle walk and large drain rounds over `pool`.
    /// Single-cluster/no-pool is the sequential path; both run the same
    /// walk and drain code in the same order.
    #[allow(clippy::too_many_arguments)]
    fn run_event<P: SimProbe>(
        &self,
        arena: &TraceArena,
        prepared: Prepared,
        check: Option<Box<CheckReport>>,
        clusters: usize,
        pool: Option<&Pool>,
        fork_fallback: Option<ForkFallback>,
        probe: &mut P,
    ) -> Result<SimResult, SimError> {
        let sections = arena.sections();
        let n = arena.len();

        let Prepared {
            core_of,
            mut network,
            created_by,
        } = prepared;
        let mut resolver = Resolver::new(&self.config, arena, n);

        let mut chip = ChipState::new(self.config.cores, sections.len());
        let mut stalls = StallTable::new(sections.len());
        let mut clusters: Vec<Cluster> = partition(self.config.cores, clusters);
        let sizes: Vec<usize> = clusters.iter().map(|c| c.len).collect();
        // Cluster of each core, for routing deliveries and requeues.
        let mut cluster_of = vec![0u32; self.config.cores];
        for (ci, c) in clusters.iter().enumerate() {
            cluster_of[c.start..c.start + c.len].fill(ci as u32);
        }
        let mut completions: Vec<(usize, u64)> = Vec::new();
        let mut delivered = Vec::new();
        let mut forced_stall_releases = 0u64;
        // Always-on cycle attribution: fed from the same deterministic
        // section/stall events as the probe, at the sequential seams only,
        // so it is bit-identical across engines, thread counts and probes.
        let mut attr = CycleAttribution::new(self.config.cores);

        // The initial section is live from cycle 0 on its core; its first
        // fetch happens at cycle 1.
        if !sections.is_empty() {
            let root_core = core_of[0].0;
            chip.current[root_core] = 0;
            chip.next_seq[root_core] = sections[0].start as u32;
            chip.sections_hosted[root_core] = 1;
            let ci = cluster_of[root_core] as usize;
            schedule(&mut chip, &mut clusters[ci], root_core, 1);
            attr.begin_root(root_core);
            if P::ENABLED {
                probe.on_section_begin(root_core, 0, 0, false);
            }
        }

        let mut fetched = 0usize;
        let mut cycle: u64 = 0;
        let safety = 200 * n as u64 + 10_000;

        while fetched < n || resolver.resolved < n {
            // --- pick the next cycle with an event -----------------------
            let any_running = clusters.iter().any(|c| !c.running.is_empty());
            let target = if !any_running {
                let candidate = clusters
                    .iter()
                    .filter_map(|c| c.wakes.next_at())
                    .chain(network.next_arrival())
                    .chain(stalls.next_requeue())
                    .min();
                match candidate {
                    Some(at) => at.max(cycle + 1),
                    None => {
                        // Nothing is scheduled, nothing is in flight and no
                        // requeue is pending. Under the handoff model every
                        // stall has a modeled release event, so this is a
                        // genuine deadlock (a malformed trace): the detector
                        // escapes by abandoning the parked stalls — counted,
                        // and surfaced as an error by the driver layer.
                        if !(fetched < n && stalls.parked() > 0) {
                            return Err(SimError::Diverged {
                                reason: "deadlocked with no pending event",
                                cycle,
                                resolved: resolver.resolved as u64,
                                instructions: n as u64,
                            });
                        }
                        cycle += 1;
                        if cycle >= safety {
                            return Err(SimError::Diverged {
                                reason: "did not converge",
                                cycle,
                                resolved: resolver.resolved as u64,
                                instructions: n as u64,
                            });
                        }
                        forced_stall_releases += stalls.force_release(cycle + 1, arena);
                        continue;
                    }
                }
            } else {
                // The run-list fast path: at least one core acts on the
                // very next cycle (queued events are never earlier).
                cycle + 1
            };
            cycle = target;
            if cycle >= safety {
                return Err(SimError::Diverged {
                    reason: "did not converge",
                    cycle,
                    resolved: resolver.resolved as u64,
                    instructions: n as u64,
                });
            }

            // --- requeue phase: parked sections whose stall released -----
            while let Some((idx, sid)) = stalls.pop_due(cycle) {
                chip.queue_push(idx, sid.0 as u32);
                attr.requeue(idx, cycle);
                if P::ENABLED {
                    probe.on_section_requeue(idx, sid.0 as u32, cycle);
                }
                if chip.current[idx] == NO_SECTION && !chip.running[idx] {
                    // An idle core dequeues the resumed section this cycle.
                    let ci = cluster_of[idx] as usize;
                    schedule(&mut chip, &mut clusters[ci], idx, cycle);
                }
            }

            // --- deliver phase: section-creation messages ----------------
            network.deliver_into(cycle, &mut delivered);
            for envelope in delivered.drain(..) {
                let idx = envelope.dst.0;
                chip.queue_push(idx, envelope.payload.0 as u32);
                chip.sections_hosted[idx] += 1;
                if P::ENABLED {
                    probe.on_noc_deliver(idx, envelope.payload.0 as u32, cycle);
                }
                if chip.current[idx] == NO_SECTION && !chip.running[idx] {
                    // An idle core dequeues the message this very cycle.
                    let ci = cluster_of[idx] as usize;
                    schedule(&mut chip, &mut clusters[ci], idx, cycle);
                }
            }

            // --- fetch-decode phase: the per-cluster walk ----------------
            // Each cluster steps its acting cores in ascending local
            // order; cross-cluster effects are buffered and committed in
            // cluster order below, replaying the sequential engine's
            // global ascending-core order (see `crate::cluster`).
            let active: usize = clusters.iter().map(|c| c.running.len).sum();
            let walk_forked = clusters.len() > 1 && pool.is_some() && active >= WALK_FORK_MIN;
            if P::ENABLED {
                probe.on_tick(TickGauges {
                    cycle,
                    running: active as u64,
                    calendar_depth: clusters.iter().map(|c| c.wakes.len()).sum::<usize>() as u64,
                    noc_in_flight: network.in_flight() as u64,
                    parked: stalls.parked() as u64,
                });
                probe.on_walk(cycle, clusters.len(), active, walk_forked);
            }
            if clusters.len() == 1 {
                // Sequential fast path: the whole chip is one window, so
                // the walk borrows the columns directly — no per-cycle
                // view allocation on the hot loop.
                let (mut view, queue_next) = chip.view_all();
                let ctx = WalkCtx {
                    arena,
                    sections,
                    created_by: &created_by,
                    complete: &resolver.complete,
                    resume_at: stalls.resume_points(),
                    queue_next,
                    fetch_stalls: self.config.fetch_stalls_on_unresolved_control,
                    cycle,
                };
                walk_cluster(&mut clusters[0], &mut view, &ctx);
            } else {
                let (views, queue_next) = chip.split(&sizes);
                let ctx = WalkCtx {
                    arena,
                    sections,
                    created_by: &created_by,
                    complete: &resolver.complete,
                    resume_at: stalls.resume_points(),
                    queue_next,
                    fetch_stalls: self.config.fetch_stalls_on_unresolved_control,
                    cycle,
                };
                match pool {
                    Some(pool) if active >= WALK_FORK_MIN => {
                        let tasks: Vec<Mutex<_>> = clusters
                            .iter_mut()
                            .zip(views)
                            .map(|(c, v)| Mutex::new((c, v)))
                            .collect();
                        pool.broadcast(&|worker| {
                            let mut task = tasks[worker].lock().expect("no panicking jobs");
                            let (cluster, view) = &mut *task;
                            walk_cluster(cluster, view, &ctx);
                        });
                    }
                    _ => {
                        for (cluster, mut view) in clusters.iter_mut().zip(views) {
                            walk_cluster(cluster, &mut view, &ctx);
                        }
                    }
                }
            }
            // Commit the buffered effects in cluster (= ascending core)
            // order: fetches into the resolver, fork messages onto the
            // NoC, consumed resume points cleared, section lifetime
            // events into the attribution table and the probe.
            for cluster in clusters.iter_mut() {
                fetched += cluster.fetched.len();
                for &seq in &cluster.fetched {
                    resolver.fetch(seq as usize, cycle);
                }
                cluster.fetched.clear();
                for &(src, child) in &cluster.sends {
                    let child = SectionId(child as usize);
                    let dst = core_of[child.0];
                    network.send(CoreId(src as usize), dst, child, cycle);
                    if P::ENABLED {
                        probe.on_noc_send(src as usize, dst.0, child.0 as u32, cycle);
                    }
                }
                cluster.sends.clear();
                let start = cluster.start;
                for &(local, sid, resumed) in &cluster.began {
                    if resumed {
                        stalls.clear_resume(sid as usize);
                    }
                    attr.begin(start + local as usize, cycle);
                    if P::ENABLED {
                        probe.on_section_begin(start + local as usize, sid, cycle, resumed);
                    }
                }
                cluster.began.clear();
                for &(local, sid, with_fetch) in &cluster.ended {
                    let core = start + local as usize;
                    if with_fetch {
                        attr.end_fetch(core, cycle);
                    } else {
                        attr.end_nofetch(core, cycle);
                    }
                    if P::ENABLED {
                        probe.on_section_end(core, sid, cycle, with_fetch);
                    }
                }
                cluster.ended.clear();
            }

            // --- dependence resolution -----------------------------------
            completions.clear();
            resolver.drain(&network, &core_of, &mut completions, pool, cycle, probe);

            // A completion that a parked section stalls on is its modeled
            // release event: requeue the section on the first cycle after
            // both the completion is known and its cycle is past.
            if stalls.parked() > 0 {
                for &(seq, completion) in &completions {
                    if let Some(idx) = stalls.unpark(seq) {
                        stalls.push_requeue(
                            (cycle + 1).max(completion + 1),
                            idx,
                            arena.section(seq),
                        );
                    }
                }
            }
            // Dispatch the stalls created this cycle (all still in their
            // run lists): a known completion (possibly resolved within
            // this very cycle's drain) stalls in place until just past
            // it; an unknown one hands the core off to its queued
            // sections and parks.
            for cluster in clusters.iter_mut() {
                if cluster.newly_stalled.is_empty() {
                    continue;
                }
                let mut stalled = std::mem::take(&mut cluster.newly_stalled);
                let (start, len) = (cluster.start, cluster.len);
                for &local in &stalled {
                    let local = local as usize;
                    let idx = start + local;
                    if chip.stall_on[idx] == NO_STALL {
                        continue;
                    }
                    let seq = chip.stall_on[idx] as usize;
                    match resolver.completion(seq) {
                        Some(c) => {
                            let wake = (cycle + 1).max(c + 1);
                            attr.stall(idx, cycle, c, stall_cause(arena, seq, true));
                            if P::ENABLED {
                                probe.on_fetch_stall(
                                    idx,
                                    seq,
                                    stall_cause(arena, seq, true),
                                    cycle,
                                    wake,
                                );
                            }
                            if wake > cycle + 1 {
                                cluster
                                    .running
                                    .remove(&mut chip.running[start..start + len], local);
                                chip.wake_at[idx] = wake;
                                cluster.wakes.push(wake, local);
                            }
                        }
                        None => {
                            // `park` clears the core's current section, so
                            // read the section id for the probe first.
                            let sid = chip.current[idx];
                            attr.park(idx, cycle);
                            if P::ENABLED {
                                probe.on_section_park(
                                    idx,
                                    sid,
                                    seq,
                                    cycle,
                                    stall_cause(arena, seq, false),
                                );
                            }
                            stalls.park(idx, &mut chip, seq);
                            if chip.queue_head[idx] == NO_SECTION {
                                cluster
                                    .running
                                    .remove(&mut chip.running[start..start + len], local);
                            }
                        }
                    }
                }
                stalled.clear();
                cluster.newly_stalled = stalled;
            }
        }

        let hosted: Vec<usize> = chip.sections_hosted.iter().map(|&h| h as usize).collect();
        let attribution = attr.finish(resolver.max_ret);
        self.finish(
            arena,
            resolver,
            core_of,
            &hosted,
            network.stats(),
            forced_stall_releases,
            check,
            fork_fallback,
            attribution,
        )
    }

    /// Runs the static analysis of `parsecs-check` over the arena when
    /// [`SimConfig::validate`] is on: a structurally invalid arena is
    /// rejected as [`SimError::Invariant`]; a clean report is returned
    /// for attachment to [`SimResult::check`]. A single branch (and no
    /// work at all) when validation is off.
    pub(crate) fn precheck(
        &self,
        arena: &TraceArena,
    ) -> Result<Option<Box<CheckReport>>, SimError> {
        if !self.config.validate {
            return Ok(None);
        }
        let report = parsecs_check::check_arena(arena);
        if !report.is_clean() {
            return Err(SimError::Invariant(Box::new(report)));
        }
        Ok(Some(Box::new(report)))
    }

    /// Validates the placement and builds the shared pre-timing state.
    pub(crate) fn prepare(&self, arena: &TraceArena) -> Result<Prepared, SimError> {
        let sections = arena.sections();
        let core_of = self.place(arena)?;
        let topology = self.config.effective_topology();
        let network: Network<SectionId> = Network::new(topology, self.config.noc);

        // Which section does each dynamic fork create?
        let created_by: HashMap<usize, SectionId> = sections
            .iter()
            .filter_map(|s| s.creator.map(|(_, fork_seq)| (fork_seq, s.id)))
            .collect();

        Ok(Prepared {
            core_of,
            network,
            created_by,
        })
    }

    /// Assembles the [`SimResult`] from a finished resolver. The
    /// aggregate cycle counts come from the resolver's streaming
    /// accumulators — identical in both stats modes (and zero for an
    /// empty program) — so only the per-row stage table depends on
    /// [`SimConfig::record_timings`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Diverged`] when an instruction comes out of
    /// the resolver with sentinel cycles — the stall/wake model broke
    /// down, and sentinels must never leak into reported timings (a hard
    /// check, release builds included; the one-branch-per-instruction
    /// cost is negligible next to building the row).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        &self,
        arena: &TraceArena,
        resolver: Resolver<'_>,
        core_of: Vec<CoreId>,
        sections_hosted: &[usize],
        noc: NocStats,
        forced_stall_releases: u64,
        check: Option<Box<CheckReport>>,
        fork_fallback: Option<ForkFallback>,
        attribution: Vec<CoreBreakdown>,
    ) -> Result<SimResult, SimError> {
        let timings: Vec<InstTiming> = if self.config.record_timings {
            (0..arena.len())
                .map(|seq| {
                    let section = arena.section(seq);
                    let fd = resolver.fd[seq];
                    let ew = resolver.ew[seq];
                    let complete = resolver.complete[seq];
                    let ret = resolver.ret[seq];
                    if fd == UNKNOWN || ew == UNKNOWN || ret == UNKNOWN || complete >= INCOMPLETE {
                        return Err(SimError::Diverged {
                            reason: "left an instruction unresolved",
                            cycle: resolver.max_ret,
                            resolved: resolver.resolved as u64,
                            instructions: arena.len() as u64,
                        });
                    }
                    // `rr`/`ar`/`ma` are derived, not stored: renaming is
                    // the cycle after fetch, address-rename the cycle
                    // after execute, and the memory access completes the
                    // value.
                    let is_mem = arena.is_load(seq) || arena.is_store(seq);
                    Ok(InstTiming {
                        seq,
                        index_in_section: arena.index_in_section(seq),
                        ip: arena.ip(seq),
                        mnemonic: arena.mnemonic(seq),
                        section,
                        core: core_of[section.0],
                        fd,
                        rr: fd + 1,
                        ew,
                        ar: is_mem.then(|| ew + 1),
                        ma: is_mem.then_some(complete),
                        ret,
                    })
                })
                .collect::<Result<_, _>>()?
        } else {
            Vec::new()
        };

        let instructions = arena.len() as u64;
        let fetch_cycles = resolver.max_fd;
        let total_cycles = resolver.max_ret;
        let mut used: Vec<CoreId> = core_of.clone();
        used.sort();
        used.dedup();
        let stats = SimStats {
            instructions,
            sections: arena.sections().len(),
            cores_used: used.len(),
            fetch_cycles,
            total_cycles,
            fetch_ipc: if fetch_cycles == 0 {
                0.0
            } else {
                instructions as f64 / fetch_cycles as f64
            },
            retire_ipc: if total_cycles == 0 {
                0.0
            } else {
                instructions as f64 / total_cycles as f64
            },
            remote_register_requests: resolver.remote_register_requests,
            remote_memory_requests: resolver.remote_memory_requests,
            fork_copied_sources: resolver.fork_copied_sources,
            dmh_accesses: resolver.dmh_accesses,
            forced_stall_releases,
            peak_sections_per_core: sections_hosted.iter().copied().max().unwrap_or(0),
            trace_arena_bytes: arena.memory_bytes() as u64,
            noc,
            attribution,
        };

        debug_assert!(
            stats
                .attribution
                .iter()
                .all(|b| b.total() == stats.total_cycles),
            "a core's attribution buckets do not sum to total_cycles"
        );
        if let Some(bounds) = check.as_ref().and_then(|report| report.bounds.as_ref()) {
            // The static analyzer's critical path is a configuration-
            // independent lower bound on the retirement span; an engine
            // undercutting it has an optimistic-timing bug.
            debug_assert!(
                stats.total_cycles >= bounds.critical_path,
                "total_cycles {} undercuts the static critical path {}",
                stats.total_cycles,
                bounds.critical_path
            );
        }
        if let Some(schedule) = check.as_ref().and_then(|report| report.schedule.as_ref()) {
            // The lb sandwich: the config-aware bound must dominate the
            // config-independent one (it re-weights the same recurrences
            // with latencies ≥ the universal minimum) and the simulated
            // run must never undercut a certified bound.
            if let Some(bounds) = check.as_ref().and_then(|report| report.bounds.as_ref()) {
                debug_assert!(
                    schedule.lb >= bounds.critical_path,
                    "schedule lb {} undercuts the config-independent critical path {}",
                    schedule.lb,
                    bounds.critical_path
                );
            }
            debug_assert!(
                stats.total_cycles >= schedule.lb,
                "total_cycles {} undercuts the certified schedule bound {} ({} bound)",
                stats.total_cycles,
                schedule.lb,
                schedule.binding
            );
        }
        if let Some(progress) = check.as_ref().and_then(|report| report.progress.as_ref()) {
            // The no-false-proofs contract: the runtime deadlock detector
            // firing on a run the prover declared `Proven` means the
            // prover (or the placement it was fed) is lying.
            debug_assert!(
                !(stats.forced_stall_releases > 0 && progress.is_proven()),
                "the deadlock detector fired {} time(s) on a run proven to progress",
                stats.forced_stall_releases
            );
        }

        Ok(SimResult {
            outputs: arena.outputs().to_vec(),
            timings,
            timings_recorded: self.config.record_timings,
            sections: arena.sections().to_vec(),
            core_of,
            stats,
            check,
            fork_fallback,
        })
    }

    /// Delegates the section-to-core assignment to the configured
    /// [`crate::PlacementPolicy`] and validates its output. Policies that
    /// ask for them get the trace's cross-section dependences.
    fn place(&self, arena: &TraceArena) -> Result<Vec<CoreId>, SimError> {
        let sections = arena.sections();
        let chip = self.config.chip_view();
        let core_of = if self.config.placement.wants_dependences() {
            let deps = crate::SectionDeps::from_arena(sections.len(), arena);
            self.config
                .placement
                .assign_with_deps(sections, &chip, &deps)
        } else {
            self.config.placement.assign(sections, &chip)
        };
        if core_of.len() != sections.len() {
            return Err(SimError::Config(format!(
                "placement policy '{}' assigned {} cores for {} sections",
                self.config.placement.name(),
                core_of.len(),
                sections.len()
            )));
        }
        if let Some(bad) = core_of.iter().find(|c| c.0 >= self.config.cores) {
            return Err(SimError::Config(format!(
                "placement policy '{}' chose {bad} on a {}-core chip",
                self.config.placement.name(),
                self.config.cores
            )));
        }
        Ok(core_of)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::format_figure10;
    use crate::section::tests::sum_fork_program;
    use parsecs_machine::TraceKind;

    fn sim_sum(data: &[u64], config: SimConfig) -> SimResult {
        let program = sum_fork_program(data);
        ManyCoreSim::new(config).run(&program).expect("simulates")
    }

    #[test]
    fn sum_of_five_reproduces_the_papers_shape() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert_eq!(result.outputs, vec![21]);
        assert_eq!(result.stats.sections, 6);
        assert_eq!(result.stats.instructions, 50);
        // The paper's Figure 10 fetches the 45 sum instructions in 30
        // cycles and retires them by cycle 43; our run adds a 5-instruction
        // main wrapper, so allow a modest band around those values.
        assert!(
            (25..=45).contains(&result.stats.fetch_cycles),
            "fetch span {} outside the expected band",
            result.stats.fetch_cycles
        );
        assert!(
            (35..=90).contains(&result.stats.total_cycles),
            "retire span {} outside the expected band",
            result.stats.total_cycles
        );
        assert!(result.stats.fetch_ipc > 1.0);
        // The first instruction is fetched at cycle 1 on the root core.
        assert_eq!(result.timings[0].fd, 1);
    }

    #[test]
    fn validated_runs_attach_identical_reports_on_both_engines() {
        let program = sum_fork_program(&[4, 2, 6, 4, 5]);
        let sim = ManyCoreSim::new(SimConfig::with_cores(8).validated());
        let validated = sim.run(&program).expect("simulates");
        let reference = sim.run_reference(&program).expect("simulates");
        assert_eq!(validated, reference);
        let report = validated.check.as_ref().expect("validated run");
        assert!(report.is_clean());
        assert!(report.drain.is_certified());
        let bounds = report.bounds.as_ref().expect("clean arenas are bounded");
        assert!(
            validated.stats.total_cycles >= bounds.critical_path,
            "{} < {}",
            validated.stats.total_cycles,
            bounds.critical_path
        );
        // The unvalidated run is identical except for the attachment.
        // (Pinned off explicitly: the default tracks PARSECS_VALIDATE.)
        let mut off = SimConfig::with_cores(8);
        off.validate = false;
        let mut plain = ManyCoreSim::new(off).run(&program).expect("simulates");
        assert!(plain.check.is_none());
        plain.check = validated.check.clone();
        assert_eq!(plain, validated);
    }

    #[test]
    fn validation_rejects_corrupt_arenas_with_a_typed_report() {
        use parsecs_trace::PackedDep;
        // A record claiming a producer at or past itself: a dependence
        // cycle the validator must catch before the engines run.
        let mut arena = TraceArena::new();
        let id = arena.intern_mnemonic("bogus");
        arena.begin_record(0, id, SectionId(0), TraceKind::Other, false, false, false);
        arena.push_dep(PackedDep::from_raw_parts(1, 0, 0));
        arena.end_record(1);
        arena.push_section(SectionSpan {
            id: SectionId(0),
            start: 0,
            end: 1,
            creator: None,
            start_ip: 0,
        });
        let sim = ManyCoreSim::new(SimConfig::with_cores(2).validated());
        let err = sim.simulate_arena(&arena).expect_err("must be rejected");
        match err {
            SimError::Invariant(report) => {
                assert!(!report.is_clean());
                assert!(matches!(
                    report.first_violation(),
                    Some(parsecs_check::InvariantViolation::DependenceCycle { .. })
                ));
            }
            other => panic!("expected an invariant error, got {other}"),
        }
    }

    #[test]
    fn stage_cycles_are_monotone_within_an_instruction() {
        let result = sim_sum(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3], SimConfig::with_cores(16));
        for t in &result.timings {
            assert!(t.rr > t.fd, "{}: rr after fd", t.name());
            assert!(t.ew >= t.fd, "{}: ew at or after fd", t.name());
            if let (Some(a), Some(m)) = (t.ar, t.ma) {
                assert!(a > t.ew, "{}: ar after ew", t.name());
                assert!(m > a, "{}: ma after ar", t.name());
            }
            assert!(t.ret > t.ew, "{}: retire after execute", t.name());
        }
    }

    #[test]
    fn fetch_is_one_instruction_per_core_per_cycle() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        let mut per_core_cycle: HashMap<(CoreId, u64), u64> = HashMap::new();
        for t in &result.timings {
            *per_core_cycle.entry((t.core, t.fd)).or_insert(0) += 1;
        }
        assert!(per_core_cycle.values().all(|c| *c == 1));
    }

    /// Regression for the old O(total instructions) filter scan:
    /// `section_timings` must hand back the section's contiguous span of
    /// the sequential table, covering every row exactly once even on a
    /// many-section trace.
    #[test]
    fn section_timings_slices_the_contiguous_span() {
        let data: Vec<u64> = (1..=40).collect();
        let result = sim_sum(&data, SimConfig::with_cores(16));
        assert!(
            result.sections.len() > 30,
            "want a many-section trace, got {}",
            result.sections.len()
        );
        let mut covered = 0usize;
        for span in &result.sections {
            let timings = result.section_timings(span.id);
            assert_eq!(timings.len(), span.len(), "{}", span.id);
            assert!(timings.iter().all(|t| t.section == span.id));
            assert_eq!(timings.first().map(|t| t.seq), Some(span.start));
            covered += timings.len();
        }
        assert_eq!(covered, result.timings.len());
        // A stats-only run has no rows to slice — empty view, no panic.
        let stats = sim_sum(&data, SimConfig::with_cores(16).stats_only());
        assert!(stats.section_timings(SectionId(0)).is_empty());
        // An id past the run's sections yields an empty view (the old
        // filter scan's behaviour), not a panic.
        assert!(result
            .section_timings(SectionId(result.sections.len()))
            .is_empty());
    }

    /// The tentpole contract of stats-only mode: every aggregate in
    /// `SimStats` is accumulated streaming and comes out bit-identical to
    /// the recording run, on both engines, with no stage table built.
    #[test]
    fn stats_only_matches_full_mode_statistics_bit_for_bit() {
        let data: Vec<u64> = (1..=24).collect();
        let program = sum_fork_program(&data);
        for cores in [1, 4, 16] {
            let full_sim = ManyCoreSim::new(SimConfig::with_cores(cores));
            let stats_sim = ManyCoreSim::new(SimConfig::with_cores(cores).stats_only());
            let full = full_sim.run(&program).expect("full-mode simulates");
            let stats = stats_sim.run(&program).expect("stats-only simulates");
            let stats_reference = stats_sim
                .run_reference(&program)
                .expect("stats-only reference simulates");
            assert_eq!(stats, stats_reference, "engines diverge stats-only");
            assert_eq!(
                stats.stats, full.stats,
                "aggregates diverge at {cores} cores"
            );
            assert_eq!(stats.outputs, full.outputs);
            assert_eq!(stats.sections, full.sections);
            assert_eq!(stats.core_of, full.core_of);
            assert!(stats.timings.is_empty() && !stats.timings_recorded);
            assert!(full.timings_recorded);
            assert!(stats.sim_state_bytes() < full.sim_state_bytes());
        }
    }

    /// Both engines, both stats modes, zero instructions: the streaming
    /// accumulators and the post-hoc table derivation must agree that
    /// everything is zero (the old `unwrap_or(0)` fallback path).
    #[test]
    fn empty_traces_simulate_to_zeroed_stats_everywhere() {
        let empty = crate::StreamingSectioner::new()
            .finish(vec![])
            .expect("fits");
        let full_sim = ManyCoreSim::new(SimConfig::with_cores(4));
        let stats_sim = ManyCoreSim::new(SimConfig::with_cores(4).stats_only());
        let full = full_sim.simulate_arena(&empty).expect("simulates");
        assert_eq!(
            full,
            full_sim
                .simulate_arena_reference(&empty)
                .expect("simulates")
        );
        let stats = stats_sim.simulate_arena(&empty).expect("simulates");
        assert_eq!(
            stats,
            stats_sim
                .simulate_arena_reference(&empty)
                .expect("simulates")
        );
        assert_eq!(full.stats, stats.stats);
        assert_eq!(full.stats.instructions, 0);
        assert_eq!(full.stats.fetch_cycles, 0);
        assert_eq!(full.stats.total_cycles, 0);
        assert_eq!(full.stats.fetch_ipc, 0.0);
        assert_eq!(full.stats.retire_ipc, 0.0);
        assert_eq!(full.stats.forced_stall_releases, 0);
        assert!(full.timings.is_empty() && full.timings_recorded);
        assert!(full.outputs.is_empty());
        assert_eq!(full.total_bytes_per_instruction(), 0.0);
    }

    #[test]
    fn retirement_is_in_order_within_a_section() {
        let result = sim_sum(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], SimConfig::with_cores(16));
        for span in &result.sections {
            let timings = result.section_timings(span.id);
            for pair in timings.windows(2) {
                assert!(
                    pair[1].ret > pair[0].ret,
                    "retirement must be in order within {}",
                    span.id
                );
                assert!(
                    pair[1].fd > pair[0].fd,
                    "fetch must be in order within {}",
                    span.id
                );
            }
        }
    }

    #[test]
    fn remote_operands_are_charged_noc_latency() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert!(
            result.stats.remote_register_requests >= 2,
            "each resume waits for %rax"
        );
        assert!(
            result.stats.remote_memory_requests >= 1,
            "the final sum reads a remote stack word"
        );
        assert!(result.stats.fork_copied_sources > 0);
        assert_eq!(
            result.stats.dmh_accesses, 5,
            "five array elements come from the loader"
        );
    }

    #[test]
    fn more_cores_do_not_slow_the_run_down() {
        let data: Vec<u64> = (1..=40).collect();
        let few = sim_sum(&data, SimConfig::with_cores(2));
        let many = sim_sum(&data, SimConfig::with_cores(64));
        assert_eq!(few.outputs, many.outputs);
        assert!(many.stats.fetch_cycles <= few.stats.fetch_cycles);
        assert!(many.stats.fetch_ipc >= few.stats.fetch_ipc);
    }

    #[test]
    fn single_core_still_works_and_is_slower() {
        let data: Vec<u64> = (1..=20).collect();
        let one = sim_sum(&data, SimConfig::with_cores(1));
        let many = sim_sum(&data, SimConfig::with_cores(32));
        assert_eq!(one.outputs, vec![210]);
        assert!(one.stats.fetch_cycles >= many.stats.fetch_cycles);
        assert_eq!(one.stats.cores_used, 1);
    }

    #[test]
    fn least_loaded_placement_balances_instructions() {
        let data: Vec<u64> = (1..=40).collect();
        let config = SimConfig::with_cores(4).with_placement(crate::Placement::LeastLoaded);
        let result = sim_sum(&data, config);
        let mut per_core = vec![0usize; 4];
        for (sid, core) in result.core_of.iter().enumerate() {
            per_core[core.0] += result.sections[sid].len();
        }
        let max = *per_core.iter().max().unwrap();
        let min = *per_core.iter().filter(|c| **c > 0).min().unwrap();
        assert!(max <= min * 3, "placement should spread work: {per_core:?}");
    }

    #[test]
    fn call_based_program_runs_on_one_section() {
        let program = parsecs_asm::assemble(
            "main: movq $6, %rdi
                   call fact
                   out  %rax
                   halt
             fact: movq $1, %rax
                   movq %rdi, %rcx
             loop: imulq %rcx, %rax
                   subq $1, %rcx
                   jne loop
                   ret",
        )
        .unwrap();
        let result = ManyCoreSim::new(SimConfig::with_cores(4))
            .run(&program)
            .unwrap();
        assert_eq!(result.outputs, vec![720]);
        assert_eq!(result.stats.sections, 1);
        assert_eq!(result.stats.cores_used, 1);
        assert!(
            result.stats.fetch_ipc <= 1.0,
            "a single section fetches at most 1 IPC"
        );
    }

    #[test]
    fn invalid_configuration_is_reported() {
        let program = sum_fork_program(&[1, 2, 3]);
        let err = ManyCoreSim::new(SimConfig::with_cores(0))
            .run(&program)
            .unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn figure10_table_lists_every_instruction_grouped_by_core() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        let table = format_figure10(&result);
        assert!(table.contains("core0 pipeline"));
        assert!(table.contains("fork"));
        assert!(table.contains("endfork"));
        let instruction_rows = table
            .lines()
            .filter(|l| {
                l.trim_start()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit())
            })
            .count();
        assert_eq!(instruction_rows, result.timings.len());
    }

    #[test]
    fn per_section_hop_penalty_increases_latency() {
        let data: Vec<u64> = (1..=20).collect();
        let base = sim_sum(&data, SimConfig::with_cores(8));
        let mut slow_cfg = SimConfig::with_cores(8);
        slow_cfg.per_section_hop = 10;
        let slow = sim_sum(&data, slow_cfg);
        assert_eq!(base.outputs, slow.outputs);
        assert!(slow.stats.total_cycles >= base.stats.total_cycles);
    }

    #[test]
    fn disabling_fetch_stalls_never_slows_fetch() {
        let data: Vec<u64> = (1..=20).collect();
        let mut cfg = SimConfig::with_cores(8);
        cfg.fetch_stalls_on_unresolved_control = false;
        let ideal = sim_sum(&data, cfg);
        let real = sim_sum(&data, SimConfig::with_cores(8));
        assert!(ideal.stats.fetch_cycles <= real.stats.fetch_cycles);
    }

    #[test]
    fn well_formed_runs_never_need_forced_stall_releases() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert_eq!(result.stats.forced_stall_releases, 0);
    }

    /// The scenario that used to drive the retired force-release
    /// heuristic: forked leaves bump shared counters through a
    /// load–conditional–store whose conditional depends on the *loaded*
    /// value, so a leaf's fetch stage waits on the previous writer of the
    /// same word — wherever on the chip (or how deep in a core's queue)
    /// that writer is. Under the handoff model the stalled section parks,
    /// the core keeps fetching the producers, and an explicit requeue
    /// event resumes it: the detector stays silent on every chip shape.
    #[test]
    fn contended_writer_chains_park_and_resume_without_forced_releases() {
        let program = parsecs_asm::assemble(
            "w:     .quad 0, 0
main:   fork t0
        fork t1
        fork t2
        fork t3
        movq $w, %rcx
        movq 0(%rcx), %rax
        addq 8(%rcx), %rax
        out  %rax
        halt
t0:     movq $w, %rcx
        movq 0(%rcx), %rax
        cmpq $0, %rax
        je .a0
.a0:    addq $1, %rax
        movq %rax, 0(%rcx)
        movq 8(%rcx), %rbx
        cmpq $0, %rbx
        je .b0
.b0:    addq $3, %rbx
        movq %rbx, 8(%rcx)
        endfork
t1:     movq $w, %rcx
        movq 8(%rcx), %rax
        cmpq $0, %rax
        je .a1
.a1:    addq $1, %rax
        movq %rax, 8(%rcx)
        endfork
t2:     movq $w, %rcx
        movq 0(%rcx), %rax
        cmpq $0, %rax
        je .a2
.a2:    addq $5, %rax
        movq %rax, 0(%rcx)
        endfork
t3:     movq $w, %rcx
        movq 8(%rcx), %rax
        cmpq $0, %rax
        je .a3
.a3:    addq $7, %rax
        movq %rax, 8(%rcx)
        endfork",
        )
        .expect("assembles");
        let mut configs = vec![
            SimConfig::with_cores(1),
            SimConfig::with_cores(2),
            SimConfig::with_cores(5),
        ];
        let mut tight = SimConfig::with_cores(2);
        tight.max_sections_per_core = 1;
        tight.noc.link_bandwidth = Some(1);
        configs.push(tight);
        let mut slow = SimConfig::with_cores(4);
        slow.topology = Some(parsecs_noc::Topology::mesh(2, 2));
        slow.noc.base_latency = 9;
        slow.noc.per_hop_latency = 5;
        configs.push(slow);
        for config in configs {
            let sim = ManyCoreSim::new(config);
            let event = sim.run(&program).expect("simulates");
            let reference = sim.run_reference(&program).expect("reference simulates");
            assert_eq!(event, reference, "{:?}", sim.config());
            // 0+1+5 = 6 and 0+3+1+7 = 11.
            assert_eq!(event.outputs, vec![17], "{:?}", sim.config());
            assert_eq!(
                event.stats.forced_stall_releases,
                0,
                "the detector fired under {:?}",
                sim.config()
            );
        }
    }

    /// The tentpole contract: the event-driven engine and the retained
    /// cycle-stepping reference produce bit-identical results — the same
    /// per-instruction stage table, the same statistics, the same NoC
    /// counters — across workloads, chip sizes and configurations.
    #[test]
    fn event_driven_engine_matches_the_reference_bit_for_bit() {
        let data: Vec<u64> = (1..=40).collect();
        let program = sum_fork_program(&data);
        for cores in [1, 2, 3, 8, 64] {
            for placement_config in [
                SimConfig::with_cores(cores),
                SimConfig::with_cores(cores).with_placement(crate::Placement::LeastLoaded),
                SimConfig::with_cores(cores).with_placement(crate::LoadAware),
            ] {
                let sim = ManyCoreSim::new(placement_config);
                let event = sim.run(&program).expect("event-driven simulates");
                let reference = sim.run_reference(&program).expect("reference simulates");
                assert_eq!(
                    event,
                    reference,
                    "engines diverge at {cores} cores with {}",
                    sim.config().placement.name()
                );
            }
        }
    }

    #[test]
    fn engines_agree_under_hostile_configurations() {
        let data: Vec<u64> = (1..=24).collect();
        let program = sum_fork_program(&data);
        let mut configs = Vec::new();
        let mut bandwidth = SimConfig::with_cores(4);
        bandwidth.noc.link_bandwidth = Some(1);
        configs.push(bandwidth);
        let mut slow_noc = SimConfig::with_cores(6);
        slow_noc.noc.base_latency = 3;
        slow_noc.noc.per_hop_latency = 7;
        slow_noc.topology = Some(parsecs_noc::Topology::mesh(2, 3));
        configs.push(slow_noc);
        let mut tight = SimConfig::with_cores(3);
        tight.max_sections_per_core = 1;
        tight.per_section_hop = 4;
        configs.push(tight);
        let mut no_stall = SimConfig::with_cores(8);
        no_stall.fetch_stalls_on_unresolved_control = false;
        no_stall.dmh_latency = 9;
        configs.push(no_stall);
        for config in configs {
            let sim = ManyCoreSim::new(config);
            let event = sim.run(&program).expect("event-driven simulates");
            let reference = sim.run_reference(&program).expect("reference simulates");
            assert_eq!(event, reference, "{:?}", sim.config());
        }
    }

    #[test]
    fn threaded_runs_match_sequential_bit_for_bit() {
        let data: Vec<u64> = (1..=200).collect();
        let program = sum_fork_program(&data);
        for record in [true, false] {
            let mut base = SimConfig::with_cores(64);
            base.record_timings = record;
            let sequential = ManyCoreSim::new(base.clone().with_threads(1))
                .run(&program)
                .expect("sequential simulates");
            let threaded = ManyCoreSim::new(base.with_threads(4))
                .run(&program)
                .expect("threaded simulates");
            assert_eq!(sequential, threaded, "record_timings = {record}");
        }
    }

    #[test]
    fn uncertified_arenas_fall_back_to_the_sequential_drain() {
        // Instruction 1 claims a local register producer that instruction
        // 0 never wrote: a writer-discipline violation the simulator can
        // still execute (the claimed producer is in bounds and earlier).
        let mut arena = TraceArena::new();
        let bogus = arena.intern_mnemonic("bogus");
        arena.begin_record(
            0,
            bogus,
            SectionId(0),
            TraceKind::Other,
            false,
            false,
            false,
        );
        arena.end_record(0);
        arena.begin_record(
            1,
            bogus,
            SectionId(0),
            TraceKind::Other,
            false,
            false,
            false,
        );
        arena.push_dep(crate::PackedDep::from_raw_parts(1, 0, 0));
        arena.end_record(1);
        arena.push_section(SectionSpan {
            id: SectionId(0),
            start: 0,
            end: 2,
            creator: None,
            start_ip: 0,
        });
        assert!(
            !drain_fork_certified(&arena, None),
            "a writer-discipline violation must withhold the fork certificate"
        );

        // The threaded configuration falls back to the sequential drain,
        // produces the sequential result, and — instead of staying
        // silent — records the typed reason for the withheld fork.
        let mut config = SimConfig::with_cores(4);
        config.validate = false;
        let sim_seq = ManyCoreSim::new(config.clone().with_threads(1));
        let sim_thr = ManyCoreSim::new(config.with_threads(4));
        let sequential = sim_seq
            .simulate_arena(&arena)
            .expect("sequential simulates");
        let mut threaded = sim_thr
            .simulate_arena(&arena)
            .expect("falls back and simulates");
        assert_eq!(
            sequential.fork_fallback, None,
            "a run that never asked to fork reports no fallback"
        );
        assert_eq!(
            threaded.fork_fallback,
            Some(ForkFallback {
                reason: FallbackReason::DrainUncertified,
            }),
            "the corrupt arena's withheld fork must carry its typed reason"
        );
        assert!(threaded
            .fork_fallback
            .expect("typed")
            .to_string()
            .contains("drain uncertified"));
        // Modulo the fallback record, the fallback run is bit-identical
        // to the genuinely sequential one.
        threaded.fork_fallback = None;
        assert_eq!(sequential, threaded);
    }

    #[test]
    fn certified_threaded_runs_report_no_fallback() {
        let data: Vec<u64> = (1..=40).collect();
        let program = sum_fork_program(&data);
        let result = ManyCoreSim::new(SimConfig::with_cores(64).with_threads(4))
            .run(&program)
            .expect("simulates");
        assert_eq!(
            result.fork_fallback, None,
            "both certificates hold, so the fork runs and nothing is withheld"
        );
    }
}
