//! The many-core timing simulator.
//!
//! The simulator models the paper's execution as two coupled layers:
//!
//! 1. a *functional* layer — [`SectionedTrace`] runs the program, splits it
//!    into sections and resolves every producer/consumer pair; and
//! 2. a *timing* layer — this module places sections on cores and advances
//!    the chip: every core fetches one instruction per cycle along its
//!    current section (computing control in the fetch stage rather than
//!    predicting it), section-creation messages travel over the NoC,
//!    remote operands are obtained through renaming requests charged with
//!    the NoC latency, memory instructions go through the address-rename
//!    and memory-access stages, and each section retires in order.
//!
//! The timing layer is **event-driven**: instead of stepping the chip one
//! cycle at a time and rescanning every core, the scheduler keeps a
//! priority queue of per-core wake-up events (next fetch, section dequeue,
//! stall release) plus the NoC's next message arrival
//! ([`parsecs_noc::Network::next_arrival`]), and jumps the clock straight
//! to the next event. Dependence resolution uses producer→consumer wake-up
//! lists, so a queued instruction is touched only when one of its inputs
//! completes. The original cycle-stepping loop is retained in
//! [`ManyCoreSim::simulate_reference`] and the two implementations are
//! held bit-identical by differential tests (every [`SimResult`] field,
//! including the per-instruction stage table and all statistics, must
//! match exactly).
//!
//! The output is a per-instruction, per-stage cycle table (Figure 10 of the
//! paper) plus aggregate fetch/retire IPC (§5).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use parsecs_isa::Program;
use parsecs_machine::TraceKind;
use parsecs_noc::{CoreId, Network, NocStats};

use crate::{
    InstRecord, InstTiming, SectionId, SectionSpan, SectionedTrace, SimConfig, SimError, SimStats,
    SourceKind,
};

/// The result of one many-core simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Values emitted by `out` instructions during the run.
    pub outputs: Vec<u64>,
    /// Per-instruction stage timings, in sequential order.
    pub timings: Vec<InstTiming>,
    /// The sections of the run, in total order.
    pub sections: Vec<SectionSpan>,
    /// The core hosting each section (indexed by section id).
    pub core_of: Vec<CoreId>,
    /// Aggregate statistics.
    pub stats: SimStats,
}

impl SimResult {
    /// The timings of one section, in fetch order.
    pub fn section_timings(&self, id: SectionId) -> Vec<&InstTiming> {
        self.timings.iter().filter(|t| t.section == id).collect()
    }
}

/// The many-core simulator of the sectioned execution model.
#[derive(Debug, Clone)]
pub struct ManyCoreSim {
    config: SimConfig,
}

/// Everything both engines derive from the configuration before timing
/// starts: the section placement, the freshly created NoC and the
/// fork-site → created-section map.
pub(crate) struct Prepared {
    pub(crate) core_of: Vec<CoreId>,
    pub(crate) network: Network<SectionId>,
    pub(crate) created_by: HashMap<usize, SectionId>,
}

/// One core of the event-driven scheduler.
#[derive(Debug, Default)]
struct EventCore {
    queue: VecDeque<SectionId>,
    current: Option<SectionId>,
    next_seq: usize,
    stall_on: Option<usize>,
    sections_hosted: usize,
    /// Cycle of this core's outstanding wake-up event, if any. Heap
    /// entries that no longer match are stale and skipped on pop.
    wake_at: Option<u64>,
}

/// Registers `at` as `idx`'s next wake-up cycle (keeping the earlier one
/// when the core already has a sooner event).
fn schedule(
    cores: &mut [EventCore],
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
    idx: usize,
    at: u64,
) {
    match cores[idx].wake_at {
        Some(existing) if existing <= at => {}
        _ => {
            cores[idx].wake_at = Some(at);
            heap.push(Reverse((at, idx)));
        }
    }
}

/// Clears every stalled fetch stage (the deadlock-avoidance heuristic) and
/// schedules the released cores to resume fetching on the next cycle.
/// Returns the number of cores that were actually stalled.
fn force_release(
    cores: &mut [EventCore],
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
    cycle: u64,
    stalled_count: &mut usize,
    stall_waiter_of: &mut [usize],
    stall_waiting: &mut usize,
) -> u64 {
    let mut released = 0u64;
    for idx in 0..cores.len() {
        if let Some(seq) = cores[idx].stall_on {
            cores[idx].stall_on = None;
            if stall_waiter_of[seq] != usize::MAX {
                stall_waiter_of[seq] = usize::MAX;
                *stall_waiting -= 1;
            }
            released += 1;
            schedule(cores, heap, idx, cycle + 1);
        }
    }
    *stalled_count = 0;
    released
}

impl ManyCoreSim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> ManyCoreSim {
        ManyCoreSim { config }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `program` functionally, splits it into sections and simulates
    /// its distributed execution with the event-driven engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration and
    /// [`SimError::Machine`] if the functional pre-execution fails.
    pub fn run(&self, program: &Program) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let trace = SectionedTrace::from_program(program, self.config.fuel)?;
        self.simulate(&trace)
    }

    /// Like [`ManyCoreSim::run`], but timed by the retained cycle-stepping
    /// reference loop instead of the event-driven engine. The two produce
    /// bit-identical [`SimResult`]s; the reference exists as the oracle
    /// for differential tests and benchmarks.
    ///
    /// # Errors
    ///
    /// Same as [`ManyCoreSim::run`].
    pub fn run_reference(&self, program: &Program) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let trace = SectionedTrace::from_program(program, self.config.fuel)?;
        self.simulate_reference(&trace)
    }

    /// Simulates an already-sectioned trace with the cycle-stepping
    /// reference loop (see [`ManyCoreSim::run_reference`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate_reference(&self, trace: &SectionedTrace) -> Result<SimResult, SimError> {
        crate::reference::simulate(self, trace)
    }

    /// Simulates an already-sectioned trace with the event-driven engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for an invalid configuration.
    pub fn simulate(&self, trace: &SectionedTrace) -> Result<SimResult, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        let records = trace.records();
        let sections = trace.sections();
        let n = records.len();

        let Prepared {
            core_of,
            mut network,
            created_by,
        } = self.prepare(sections)?;
        let mut resolver = Resolver::new(&self.config, records, n);

        let mut cores: Vec<EventCore> = (0..self.config.cores)
            .map(|_| EventCore::default())
            .collect();
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        // Cores whose stalled control instruction has not completed yet,
        // indexed by that instruction (`usize::MAX` = no waiter); woken by
        // the resolver's completions. `stall_waiting` counts live entries.
        let mut stall_waiter_of: Vec<usize> = vec![usize::MAX; n];
        let mut stall_waiting = 0usize;
        let mut completions: Vec<(usize, u64)> = Vec::new();
        let mut newly_stalled: Vec<usize> = Vec::new();
        let mut stalled_count = 0usize;
        let mut forced_stall_releases = 0u64;

        // The initial section is live from cycle 0 on its core; its first
        // fetch happens at cycle 1.
        if !sections.is_empty() {
            let root_core = core_of[0].0;
            cores[root_core].current = Some(SectionId(0));
            cores[root_core].next_seq = sections[0].start;
            cores[root_core].sections_hosted = 1;
            schedule(&mut cores, &mut heap, root_core, 1);
        }

        let mut fetched = 0usize;
        let mut cycle: u64 = 0;
        let safety = 200 * n as u64 + 10_000;

        while fetched < n || resolver.resolved < n {
            // --- pick the next cycle with an event -----------------------
            let next_wake = loop {
                match heap.peek() {
                    Some(&Reverse((c, idx))) if cores[idx].wake_at != Some(c) => {
                        heap.pop();
                    }
                    Some(&Reverse((c, _))) => break Some(c),
                    None => break None,
                }
            };
            let candidate = match (next_wake, network.next_arrival()) {
                (Some(wake), Some(arrival)) => Some(wake.min(arrival)),
                (wake, arrival) => wake.or(arrival),
            };
            let target = match candidate {
                Some(at) => at.max(cycle + 1),
                None => {
                    // No event is scheduled and nothing is in flight: every
                    // stalled fetch stage waits on a still-unknown
                    // completion (a known one would have a wake-up event).
                    // The reference loop would tick once, observe no
                    // progress and force-release the stalled fetch stages.
                    assert!(
                        fetched < n && stalled_count > 0,
                        "many-core simulation deadlocked with no pending event at cycle {cycle}"
                    );
                    cycle += 1;
                    assert!(
                        cycle < safety,
                        "many-core simulation did not converge after {cycle} cycles"
                    );
                    forced_stall_releases += force_release(
                        &mut cores,
                        &mut heap,
                        cycle,
                        &mut stalled_count,
                        &mut stall_waiter_of,
                        &mut stall_waiting,
                    );
                    continue;
                }
            };
            // The reference loop force-releases stalled fetch stages on any
            // cycle that fetches nothing while no message is in flight and
            // no stalled fetch has a known release cycle ahead of it. When
            // the next event is more than one cycle away, cycle+1 is
            // exactly such a cycle; replay the release there so the release
            // (and the resumed fetches) land on the same cycles.
            if target > cycle + 1
                && stalled_count > 0
                && stall_waiting == stalled_count
                && network.in_flight() == 0
                && fetched < n
            {
                cycle += 1;
                assert!(
                    cycle < safety,
                    "many-core simulation did not converge after {cycle} cycles"
                );
                forced_stall_releases += force_release(
                    &mut cores,
                    &mut heap,
                    cycle,
                    &mut stalled_count,
                    &mut stall_waiter_of,
                    &mut stall_waiting,
                );
                continue;
            }
            cycle = target;
            assert!(
                cycle < safety,
                "many-core simulation did not converge after {cycle} cycles"
            );

            // --- deliver phase: section-creation messages ----------------
            for envelope in network.deliver(cycle) {
                let idx = envelope.dst.0;
                let core = &mut cores[idx];
                core.queue.push_back(envelope.payload);
                core.sections_hosted += 1;
                if core.current.is_none() {
                    // An idle core dequeues the message this very cycle.
                    schedule(&mut cores, &mut heap, idx, cycle);
                }
            }

            // --- fetch-decode phase: woken cores, in core-index order ----
            let mut fetched_this_cycle = false;
            while let Some(&Reverse((at, idx))) = heap.peek() {
                if at > cycle {
                    break;
                }
                heap.pop();
                if cores[idx].wake_at != Some(at) {
                    continue; // stale entry
                }
                cores[idx].wake_at = None;

                if cores[idx].current.is_none() {
                    // Dequeuing the next section-creation message consumes
                    // this cycle; fetch starts on the next one.
                    if let Some(next) = cores[idx].queue.pop_front() {
                        cores[idx].current = Some(next);
                        cores[idx].next_seq = sections[next.0].start;
                        schedule(&mut cores, &mut heap, idx, cycle + 1);
                    }
                    continue;
                }
                if let Some(stalled_on) = cores[idx].stall_on {
                    match resolver.complete[stalled_on] {
                        Some(c) if c < cycle => {
                            cores[idx].stall_on = None;
                            stalled_count -= 1;
                        }
                        Some(c) => {
                            // Spurious wake: the stall releases once the
                            // control instruction's completion is past.
                            schedule(&mut cores, &mut heap, idx, c + 1);
                            continue;
                        }
                        None => {
                            if stall_waiter_of[stalled_on] == usize::MAX {
                                stall_waiting += 1;
                            }
                            stall_waiter_of[stalled_on] = idx;
                            continue;
                        }
                    }
                }
                let sid = cores[idx].current.expect("checked above");
                let span = &sections[sid.0];
                if cores[idx].next_seq >= span.end {
                    cores[idx].current = None;
                    if !cores[idx].queue.is_empty() {
                        schedule(&mut cores, &mut heap, idx, cycle + 1);
                    }
                    continue;
                }
                let seq = cores[idx].next_seq;
                let record = &records[seq];
                resolver.fetch(seq, cycle);
                fetched += 1;
                fetched_this_cycle = true;
                cores[idx].next_seq += 1;

                // A fork sends a section-creation message to the host core
                // of the created section.
                if record.kind == TraceKind::Fork {
                    if let Some(&child) = created_by.get(&seq) {
                        network.send(CoreId(idx), core_of[child.0], child, cycle);
                    }
                }

                let ends_section = record.kind == TraceKind::EndFork
                    || record.kind == TraceKind::Halt
                    || cores[idx].next_seq >= span.end;
                if ends_section {
                    cores[idx].current = None;
                    if !cores[idx].queue.is_empty() {
                        schedule(&mut cores, &mut heap, idx, cycle + 1);
                    }
                } else if self.config.fetch_stalls_on_unresolved_control
                    && record.is_control
                    && !fetch_computable(record, &resolver.complete, cycle)
                {
                    // The fetch stage could not compute this control
                    // instruction (empty sources): the IP stays empty until
                    // the instruction executes.
                    cores[idx].stall_on = Some(seq);
                    stalled_count += 1;
                    newly_stalled.push(idx);
                } else {
                    schedule(&mut cores, &mut heap, idx, cycle + 1);
                }
            }

            // --- dependence resolution -----------------------------------
            completions.clear();
            resolver.drain(&network, &core_of, &mut completions);

            // Wake fetch stages stalled on a value that just completed: the
            // stall releases on the first cycle after both the completion
            // is known (next cycle at the earliest) and its value is past.
            if stall_waiting > 0 {
                for &(seq, completion) in &completions {
                    let idx = stall_waiter_of[seq];
                    if idx != usize::MAX {
                        stall_waiter_of[seq] = usize::MAX;
                        stall_waiting -= 1;
                        if cores[idx].stall_on == Some(seq) {
                            schedule(&mut cores, &mut heap, idx, (cycle + 1).max(completion + 1));
                        }
                        if stall_waiting == 0 {
                            break;
                        }
                    }
                }
            }
            // A control instruction that stalled this cycle may have
            // resolved within this very cycle's drain.
            for idx in newly_stalled.drain(..) {
                let Some(seq) = cores[idx].stall_on else {
                    continue;
                };
                match resolver.complete[seq] {
                    Some(c) => {
                        schedule(&mut cores, &mut heap, idx, (cycle + 1).max(c + 1));
                    }
                    None => {
                        if stall_waiter_of[seq] == usize::MAX {
                            stall_waiting += 1;
                        }
                        stall_waiter_of[seq] = idx;
                    }
                }
            }

            // Deadlock avoidance. A fetch stall can wait on a value produced
            // by a section that is queued *behind* the stalled section on
            // the same core (the "devil in the details" case the paper
            // acknowledges). The chip is genuinely deadlocked only when a
            // whole cycle fetches nothing, no message is in flight *and*
            // every stalled fetch stage waits on a still-unknown completion
            // (`stall_waiters` holds exactly those cores — a stall with a
            // known completion releases by itself at a scheduled wake-up,
            // and releasing it early would silently produce optimistic
            // timings). Only then release the stalled fetch stages: the
            // stalled branches resolve out of order in the execute stage,
            // as a real implementation must allow.
            if !fetched_this_cycle
                && network.in_flight() == 0
                && fetched < n
                && stalled_count > 0
                && stall_waiting == stalled_count
            {
                forced_stall_releases += force_release(
                    &mut cores,
                    &mut heap,
                    cycle,
                    &mut stalled_count,
                    &mut stall_waiter_of,
                    &mut stall_waiting,
                );
            }
        }

        let hosted: Vec<usize> = cores.iter().map(|c| c.sections_hosted).collect();
        Ok(self.finish(
            trace,
            resolver,
            core_of,
            &hosted,
            network.stats(),
            forced_stall_releases,
        ))
    }

    /// Validates the placement and builds the shared pre-timing state.
    pub(crate) fn prepare(&self, sections: &[SectionSpan]) -> Result<Prepared, SimError> {
        let core_of = self.place(sections)?;
        let topology = self.config.effective_topology();
        let network: Network<SectionId> = Network::new(topology, self.config.noc);

        // Which section does each dynamic fork create?
        let created_by: HashMap<usize, SectionId> = sections
            .iter()
            .filter_map(|s| s.creator.map(|(_, fork_seq)| (fork_seq, s.id)))
            .collect();

        Ok(Prepared {
            core_of,
            network,
            created_by,
        })
    }

    /// Assembles the [`SimResult`] from a finished resolver.
    pub(crate) fn finish(
        &self,
        trace: &SectionedTrace,
        resolver: Resolver<'_>,
        core_of: Vec<CoreId>,
        sections_hosted: &[usize],
        noc: NocStats,
        forced_stall_releases: u64,
    ) -> SimResult {
        let timings: Vec<InstTiming> = trace
            .records()
            .iter()
            .map(|record| InstTiming {
                seq: record.seq,
                index_in_section: record.index_in_section,
                ip: record.ip,
                mnemonic: record.mnemonic,
                section: record.section,
                core: core_of[record.section.0],
                fd: resolver.fd[record.seq].expect("fetched"),
                rr: resolver.rr[record.seq].expect("renamed"),
                ew: resolver.ew[record.seq].expect("executed"),
                ar: resolver.ar[record.seq],
                ma: resolver.ma[record.seq],
                ret: resolver.ret[record.seq].expect("retired"),
            })
            .collect();

        let instructions = timings.len() as u64;
        let fetch_cycles = timings.iter().map(|t| t.fd).max().unwrap_or(0);
        let total_cycles = timings.iter().map(|t| t.ret).max().unwrap_or(0);
        let mut used: Vec<CoreId> = core_of.clone();
        used.sort();
        used.dedup();
        let stats = SimStats {
            instructions,
            sections: trace.sections().len(),
            cores_used: used.len(),
            fetch_cycles,
            total_cycles,
            fetch_ipc: if fetch_cycles == 0 {
                0.0
            } else {
                instructions as f64 / fetch_cycles as f64
            },
            retire_ipc: if total_cycles == 0 {
                0.0
            } else {
                instructions as f64 / total_cycles as f64
            },
            remote_register_requests: resolver.remote_register_requests,
            remote_memory_requests: resolver.remote_memory_requests,
            fork_copied_sources: resolver.fork_copied_sources,
            dmh_accesses: resolver.dmh_accesses,
            forced_stall_releases,
            peak_sections_per_core: sections_hosted.iter().copied().max().unwrap_or(0),
            noc,
        };

        SimResult {
            outputs: trace.outputs().to_vec(),
            timings,
            sections: trace.sections().to_vec(),
            core_of,
            stats,
        }
    }

    /// Delegates the section-to-core assignment to the configured
    /// [`crate::PlacementPolicy`] and validates its output.
    fn place(&self, sections: &[SectionSpan]) -> Result<Vec<CoreId>, SimError> {
        let chip = self.config.chip_view();
        let core_of = self.config.placement.assign(sections, &chip);
        if core_of.len() != sections.len() {
            return Err(SimError::Config(format!(
                "placement policy '{}' assigned {} cores for {} sections",
                self.config.placement.name(),
                core_of.len(),
                sections.len()
            )));
        }
        if let Some(bad) = core_of.iter().find(|c| c.0 >= self.config.cores) {
            return Err(SimError::Config(format!(
                "placement policy '{}' chose {bad} on a {}-core chip",
                self.config.placement.name(),
                self.config.cores
            )));
        }
        Ok(core_of)
    }
}

enum Resolution {
    Resolved,
    WaitingOn(usize),
}

/// The dependence-resolution engine shared by the event-driven and the
/// reference simulators.
///
/// Stage timestamps are pure functions of the fetch cycles and the
/// producers' completion cycles, so resolution runs ahead of the clock:
/// [`Resolver::drain`] computes every timestamp that has become computable
/// and parks the rest on producer→consumer wake-up lists — no instruction
/// is ever rescanned while its inputs are still unknown.
pub(crate) struct Resolver<'a> {
    config: &'a SimConfig,
    records: &'a [InstRecord],
    pub(crate) fd: Vec<Option<u64>>,
    pub(crate) rr: Vec<Option<u64>>,
    pub(crate) ew: Vec<Option<u64>>,
    pub(crate) ar: Vec<Option<u64>>,
    pub(crate) ma: Vec<Option<u64>>,
    pub(crate) ret: Vec<Option<u64>>,
    pub(crate) complete: Vec<Option<u64>>,
    /// Head of the per-producer list of consumers waiting for its
    /// completion (`usize::MAX` = empty). An instruction waits on at most
    /// one producer at a time, so one `waiter_next` link per instruction
    /// threads every list — no per-wait allocation.
    waiter_head: Vec<usize>,
    /// Next consumer in the same producer's waiting list.
    waiter_next: Vec<usize>,
    /// Whether the section successor of an instruction is waiting for its
    /// retirement (retirement is in order, so only `seq + 1` ever waits on
    /// `seq`).
    successor_waits: Vec<bool>,
    queue: Vec<usize>,
    pub(crate) resolved: usize,
    pub(crate) remote_register_requests: u64,
    pub(crate) remote_memory_requests: u64,
    pub(crate) fork_copied_sources: u64,
    pub(crate) dmh_accesses: u64,
}

impl<'a> Resolver<'a> {
    pub(crate) fn new(config: &'a SimConfig, records: &'a [InstRecord], n: usize) -> Resolver<'a> {
        Resolver {
            config,
            records,
            fd: vec![None; n],
            rr: vec![None; n],
            ew: vec![None; n],
            ar: vec![None; n],
            ma: vec![None; n],
            ret: vec![None; n],
            complete: vec![None; n],
            waiter_head: vec![usize::MAX; n],
            waiter_next: vec![usize::MAX; n],
            successor_waits: vec![false; n],
            queue: Vec::new(),
            resolved: 0,
            remote_register_requests: 0,
            remote_memory_requests: 0,
            fork_copied_sources: 0,
            dmh_accesses: 0,
        }
    }

    /// Records the fetch of `seq` at `cycle` and queues it for resolution.
    pub(crate) fn fetch(&mut self, seq: usize, cycle: u64) {
        self.fd[seq] = Some(cycle);
        self.rr[seq] = Some(cycle + 1);
        self.queue.push(seq);
    }

    /// Latency of one leg (request or response) of a renaming exchange
    /// between the consumer's and the producer's cores, including the
    /// optional per-intermediate-section charge for the backward walk.
    fn request_latency(
        &self,
        network: &Network<SectionId>,
        consumer: CoreId,
        producer: CoreId,
        consumer_section: SectionId,
        producer_section: SectionId,
    ) -> u64 {
        let gap = consumer_section
            .0
            .saturating_sub(producer_section.0)
            .saturating_sub(1) as u64;
        network.latency(consumer, producer) + self.config.per_section_hop * gap
    }

    /// Resolves everything that has become computable, in two decoupled
    /// steps.
    ///
    /// Step 1 (value completion): an instruction's result becomes
    /// available as soon as its own sources are — it does *not* wait for
    /// older instructions of its section to retire. This is the
    /// out-of-order execute/memory behaviour of the paper's core.
    ///
    /// Step 2 (retirement): retirement is in order within a section, so
    /// the retire cycle additionally waits for the previous instruction's
    /// retire cycle.
    ///
    /// Every newly computed completion is appended to `completions` as
    /// `(seq, completion_cycle)` so the event-driven scheduler can wake
    /// fetch stages stalled on that value.
    pub(crate) fn drain(
        &mut self,
        network: &Network<SectionId>,
        core_of: &[CoreId],
        completions: &mut Vec<(usize, u64)>,
    ) {
        while let Some(seq) = self.queue.pop() {
            if self.complete[seq].is_some() {
                // Value already known; only retirement may be pending.
                self.try_retire(seq);
                continue;
            }
            let record = &self.records[seq];
            let my_fd = self.fd[seq].expect("queued after fetch");
            let my_rr = self.rr[seq].expect("queued after fetch");
            let my_core = core_of[record.section.0];

            let resolution = (|| {
                let mut local_remote_reg = 0u64;
                let mut local_fork_copied = 0u64;
                let mut reg_ready = 0u64;
                let mut available_at_fetch = true;
                for dep in &record.reg_sources {
                    let t = match dep.kind {
                        SourceKind::ForkCopy => {
                            local_fork_copied += 1;
                            0
                        }
                        SourceKind::InitialRegister | SourceKind::InitialMemory => 0,
                        SourceKind::Local { producer } => match self.complete[producer] {
                            Some(c) => {
                                if c > my_fd {
                                    available_at_fetch = false;
                                }
                                c
                            }
                            None => return Resolution::WaitingOn(producer),
                        },
                        SourceKind::Remote {
                            producer,
                            producer_section,
                        } => {
                            available_at_fetch = false;
                            let c = match self.complete[producer] {
                                Some(c) => c,
                                None => return Resolution::WaitingOn(producer),
                            };
                            local_remote_reg += 1;
                            let hop = self.request_latency(
                                network,
                                my_core,
                                core_of[producer_section.0],
                                record.section,
                                producer_section,
                            );
                            c.max(my_rr + hop) + hop
                        }
                    };
                    reg_ready = reg_ready.max(t);
                }

                let is_mem = record.is_load || record.is_store;
                let my_ew = if !is_mem && available_at_fetch && reg_ready <= my_fd {
                    // Computed directly in the fetch-decode stage.
                    my_fd
                } else {
                    reg_ready.max(my_rr) + 1
                };

                let mut local_remote_mem = 0u64;
                let mut local_dmh = 0u64;
                let (my_ar, my_ma, completion) = if is_mem {
                    let a = my_ew + 1;
                    let mut mem_ready = a + 1;
                    for dep in &record.mem_sources {
                        let t = match dep.kind {
                            SourceKind::InitialMemory => {
                                local_dmh += 1;
                                a + self.config.dmh_latency
                            }
                            SourceKind::Local { producer } => match self.complete[producer] {
                                Some(c) => c.max(a + 1),
                                None => return Resolution::WaitingOn(producer),
                            },
                            SourceKind::Remote {
                                producer,
                                producer_section,
                            } => {
                                let c = match self.complete[producer] {
                                    Some(c) => c,
                                    None => return Resolution::WaitingOn(producer),
                                };
                                local_remote_mem += 1;
                                let hop = self.request_latency(
                                    network,
                                    my_core,
                                    core_of[producer_section.0],
                                    record.section,
                                    producer_section,
                                );
                                c.max(a + hop) + hop
                            }
                            SourceKind::ForkCopy | SourceKind::InitialRegister => a + 1,
                        };
                        mem_ready = mem_ready.max(t);
                    }
                    (Some(a), Some(mem_ready), mem_ready)
                } else {
                    (None, None, my_ew)
                };

                self.ew[seq] = Some(my_ew);
                self.ar[seq] = my_ar;
                self.ma[seq] = my_ma;
                self.complete[seq] = Some(completion);
                self.remote_register_requests += local_remote_reg;
                self.remote_memory_requests += local_remote_mem;
                self.fork_copied_sources += local_fork_copied;
                self.dmh_accesses += local_dmh;
                completions.push((seq, completion));
                Resolution::Resolved
            })();

            match resolution {
                Resolution::Resolved => {
                    // Wake value consumers.
                    let mut waiter = std::mem::replace(&mut self.waiter_head[seq], usize::MAX);
                    while waiter != usize::MAX {
                        self.queue.push(waiter);
                        waiter = std::mem::replace(&mut self.waiter_next[waiter], usize::MAX);
                    }
                    self.try_retire(seq);
                }
                Resolution::WaitingOn(dep) => {
                    self.waiter_next[seq] = self.waiter_head[dep];
                    self.waiter_head[dep] = seq;
                }
            }
        }
    }

    /// Step 2 of dependence resolution: in-order retirement within a
    /// section. Sets `ret[seq]` once the instruction's value is complete
    /// and its predecessor in the section has retired, then wakes the
    /// successor that may be waiting on this retirement.
    fn try_retire(&mut self, seq: usize) {
        if self.ret[seq].is_some() {
            return;
        }
        let Some(completion) = self.complete[seq] else {
            return;
        };
        let record = &self.records[seq];
        let prev_ret = if record.index_in_section == 0 {
            Some(0)
        } else {
            self.ret[seq - 1]
        };
        match prev_ret {
            Some(prev) => {
                self.ret[seq] = Some(completion.max(prev) + 1);
                self.resolved += 1;
                if self.successor_waits[seq] {
                    self.successor_waits[seq] = false;
                    self.queue.push(seq + 1);
                }
            }
            None => {
                self.successor_waits[seq - 1] = true;
            }
        }
    }
}

/// Whether a control instruction can be computed by the fetch-decode stage
/// at fetch time: all of its register/flags sources are already full in the
/// local register file (fork-copied, initial, or produced locally and
/// complete no later than the fetch cycle).
pub(crate) fn fetch_computable(
    record: &crate::InstRecord,
    complete: &[Option<u64>],
    fetch_cycle: u64,
) -> bool {
    if record.is_load || record.is_store {
        return false;
    }
    record.reg_sources.iter().all(|dep| match dep.kind {
        SourceKind::ForkCopy | SourceKind::InitialRegister | SourceKind::InitialMemory => true,
        SourceKind::Local { producer } => {
            matches!(complete[producer], Some(c) if c <= fetch_cycle)
        }
        SourceKind::Remote { .. } => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format_figure10;
    use crate::section::tests::sum_fork_program;

    fn sim_sum(data: &[u64], config: SimConfig) -> SimResult {
        let program = sum_fork_program(data);
        ManyCoreSim::new(config).run(&program).expect("simulates")
    }

    #[test]
    fn sum_of_five_reproduces_the_papers_shape() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert_eq!(result.outputs, vec![21]);
        assert_eq!(result.stats.sections, 6);
        assert_eq!(result.stats.instructions, 50);
        // The paper's Figure 10 fetches the 45 sum instructions in 30
        // cycles and retires them by cycle 43; our run adds a 5-instruction
        // main wrapper, so allow a modest band around those values.
        assert!(
            (25..=45).contains(&result.stats.fetch_cycles),
            "fetch span {} outside the expected band",
            result.stats.fetch_cycles
        );
        assert!(
            (35..=90).contains(&result.stats.total_cycles),
            "retire span {} outside the expected band",
            result.stats.total_cycles
        );
        assert!(result.stats.fetch_ipc > 1.0);
        // The first instruction is fetched at cycle 1 on the root core.
        assert_eq!(result.timings[0].fd, 1);
    }

    #[test]
    fn stage_cycles_are_monotone_within_an_instruction() {
        let result = sim_sum(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3], SimConfig::with_cores(16));
        for t in &result.timings {
            assert!(t.rr > t.fd, "{}: rr after fd", t.name());
            assert!(t.ew >= t.fd, "{}: ew at or after fd", t.name());
            if let (Some(a), Some(m)) = (t.ar, t.ma) {
                assert!(a > t.ew, "{}: ar after ew", t.name());
                assert!(m > a, "{}: ma after ar", t.name());
            }
            assert!(t.ret > t.ew, "{}: retire after execute", t.name());
        }
    }

    #[test]
    fn fetch_is_one_instruction_per_core_per_cycle() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        let mut per_core_cycle: HashMap<(CoreId, u64), u64> = HashMap::new();
        for t in &result.timings {
            *per_core_cycle.entry((t.core, t.fd)).or_insert(0) += 1;
        }
        assert!(per_core_cycle.values().all(|c| *c == 1));
    }

    #[test]
    fn retirement_is_in_order_within_a_section() {
        let result = sim_sum(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], SimConfig::with_cores(16));
        for span in &result.sections {
            let timings = result.section_timings(span.id);
            for pair in timings.windows(2) {
                assert!(
                    pair[1].ret > pair[0].ret,
                    "retirement must be in order within {}",
                    span.id
                );
                assert!(
                    pair[1].fd > pair[0].fd,
                    "fetch must be in order within {}",
                    span.id
                );
            }
        }
    }

    #[test]
    fn remote_operands_are_charged_noc_latency() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert!(
            result.stats.remote_register_requests >= 2,
            "each resume waits for %rax"
        );
        assert!(
            result.stats.remote_memory_requests >= 1,
            "the final sum reads a remote stack word"
        );
        assert!(result.stats.fork_copied_sources > 0);
        assert_eq!(
            result.stats.dmh_accesses, 5,
            "five array elements come from the loader"
        );
    }

    #[test]
    fn more_cores_do_not_slow_the_run_down() {
        let data: Vec<u64> = (1..=40).collect();
        let few = sim_sum(&data, SimConfig::with_cores(2));
        let many = sim_sum(&data, SimConfig::with_cores(64));
        assert_eq!(few.outputs, many.outputs);
        assert!(many.stats.fetch_cycles <= few.stats.fetch_cycles);
        assert!(many.stats.fetch_ipc >= few.stats.fetch_ipc);
    }

    #[test]
    fn single_core_still_works_and_is_slower() {
        let data: Vec<u64> = (1..=20).collect();
        let one = sim_sum(&data, SimConfig::with_cores(1));
        let many = sim_sum(&data, SimConfig::with_cores(32));
        assert_eq!(one.outputs, vec![210]);
        assert!(one.stats.fetch_cycles >= many.stats.fetch_cycles);
        assert_eq!(one.stats.cores_used, 1);
    }

    #[test]
    fn least_loaded_placement_balances_instructions() {
        let data: Vec<u64> = (1..=40).collect();
        let config = SimConfig::with_cores(4).with_placement(crate::Placement::LeastLoaded);
        let result = sim_sum(&data, config);
        let mut per_core = vec![0usize; 4];
        for (sid, core) in result.core_of.iter().enumerate() {
            per_core[core.0] += result.sections[sid].len();
        }
        let max = *per_core.iter().max().unwrap();
        let min = *per_core.iter().filter(|c| **c > 0).min().unwrap();
        assert!(max <= min * 3, "placement should spread work: {per_core:?}");
    }

    #[test]
    fn call_based_program_runs_on_one_section() {
        let program = parsecs_asm::assemble(
            "main: movq $6, %rdi
                   call fact
                   out  %rax
                   halt
             fact: movq $1, %rax
                   movq %rdi, %rcx
             loop: imulq %rcx, %rax
                   subq $1, %rcx
                   jne loop
                   ret",
        )
        .unwrap();
        let result = ManyCoreSim::new(SimConfig::with_cores(4))
            .run(&program)
            .unwrap();
        assert_eq!(result.outputs, vec![720]);
        assert_eq!(result.stats.sections, 1);
        assert_eq!(result.stats.cores_used, 1);
        assert!(
            result.stats.fetch_ipc <= 1.0,
            "a single section fetches at most 1 IPC"
        );
    }

    #[test]
    fn invalid_configuration_is_reported() {
        let program = sum_fork_program(&[1, 2, 3]);
        let err = ManyCoreSim::new(SimConfig::with_cores(0))
            .run(&program)
            .unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn figure10_table_lists_every_instruction_grouped_by_core() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        let table = format_figure10(&result);
        assert!(table.contains("core0 pipeline"));
        assert!(table.contains("fork"));
        assert!(table.contains("endfork"));
        let instruction_rows = table
            .lines()
            .filter(|l| {
                l.trim_start()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit())
            })
            .count();
        assert_eq!(instruction_rows, result.timings.len());
    }

    #[test]
    fn per_section_hop_penalty_increases_latency() {
        let data: Vec<u64> = (1..=20).collect();
        let base = sim_sum(&data, SimConfig::with_cores(8));
        let mut slow_cfg = SimConfig::with_cores(8);
        slow_cfg.per_section_hop = 10;
        let slow = sim_sum(&data, slow_cfg);
        assert_eq!(base.outputs, slow.outputs);
        assert!(slow.stats.total_cycles >= base.stats.total_cycles);
    }

    #[test]
    fn disabling_fetch_stalls_never_slows_fetch() {
        let data: Vec<u64> = (1..=20).collect();
        let mut cfg = SimConfig::with_cores(8);
        cfg.fetch_stalls_on_unresolved_control = false;
        let ideal = sim_sum(&data, cfg);
        let real = sim_sum(&data, SimConfig::with_cores(8));
        assert!(ideal.stats.fetch_cycles <= real.stats.fetch_cycles);
    }

    #[test]
    fn well_formed_runs_never_need_forced_stall_releases() {
        let result = sim_sum(&[4, 2, 6, 4, 5], SimConfig::with_cores(8));
        assert_eq!(result.stats.forced_stall_releases, 0);
    }

    /// The tentpole contract: the event-driven engine and the retained
    /// cycle-stepping reference produce bit-identical results — the same
    /// per-instruction stage table, the same statistics, the same NoC
    /// counters — across workloads, chip sizes and configurations.
    #[test]
    fn event_driven_engine_matches_the_reference_bit_for_bit() {
        let data: Vec<u64> = (1..=40).collect();
        let program = sum_fork_program(&data);
        for cores in [1, 2, 3, 8, 64] {
            for placement_config in [
                SimConfig::with_cores(cores),
                SimConfig::with_cores(cores).with_placement(crate::Placement::LeastLoaded),
                SimConfig::with_cores(cores).with_placement(crate::LoadAware),
            ] {
                let sim = ManyCoreSim::new(placement_config);
                let event = sim.run(&program).expect("event-driven simulates");
                let reference = sim.run_reference(&program).expect("reference simulates");
                assert_eq!(
                    event,
                    reference,
                    "engines diverge at {cores} cores with {}",
                    sim.config().placement.name()
                );
            }
        }
    }

    #[test]
    fn engines_agree_under_hostile_configurations() {
        let data: Vec<u64> = (1..=24).collect();
        let program = sum_fork_program(&data);
        let mut configs = Vec::new();
        let mut bandwidth = SimConfig::with_cores(4);
        bandwidth.noc.link_bandwidth = Some(1);
        configs.push(bandwidth);
        let mut slow_noc = SimConfig::with_cores(6);
        slow_noc.noc.base_latency = 3;
        slow_noc.noc.per_hop_latency = 7;
        slow_noc.topology = Some(parsecs_noc::Topology::mesh(2, 3));
        configs.push(slow_noc);
        let mut tight = SimConfig::with_cores(3);
        tight.max_sections_per_core = 1;
        tight.per_section_hop = 4;
        configs.push(tight);
        let mut no_stall = SimConfig::with_cores(8);
        no_stall.fetch_stalls_on_unresolved_control = false;
        no_stall.dmh_latency = 9;
        configs.push(no_stall);
        for config in configs {
            let sim = ManyCoreSim::new(config);
            let event = sim.run(&program).expect("event-driven simulates");
            let reference = sim.run_reference(&program).expect("reference simulates");
            assert_eq!(event, reference, "{:?}", sim.config());
        }
    }
}
