//! Per-cluster event scheduling and the fetch-decode walk.
//!
//! The event engine partitions the chip's cores into contiguous
//! **clusters** (the clustered hardware task manager shape): each cluster
//! owns a two-level calendar queue ([`WakeQueue`]) and an intrusive run
//! list ([`RunList`]) over its *local* core indices, and walks its cores
//! each simulated cycle through a disjoint [`CoreView`] window of the
//! chip columns. Cross-cluster effects — instruction fetches into the
//! resolver, NoC section-creation sends, resume-point clears — are
//! *buffered* per cluster during the walk and committed sequentially in
//! ascending cluster order afterwards, which replays exactly the
//! ascending-core-index order of the sequential walk:
//!
//! * a fetch's only same-cycle side effect on other cores is the tagged
//!   `complete[seq] = INCOMPLETE | cycle` write, and both `UNKNOWN` and
//!   that encoding sit at or above `INCOMPLETE`, so every same-cycle
//!   predicate (`completion()`, `fetch_computable`) reads them
//!   identically — deferring the write is invisible;
//! * NoC sends are committed in the walk's core order, preserving the
//!   link-bandwidth accounting order;
//! * everything else the walk touches is cluster-local.
//!
//! One walk implementation serves both paths: a single-cluster run is the
//! sequential engine, a multi-cluster run forks the same walk over the
//! scoped pool — bit-identity between them holds by construction.

use std::collections::HashMap;

use parsecs_machine::TraceKind;
use parsecs_trace::TraceArena;

use crate::chip::{ChipState, CoreView, NO_SECTION, NO_STALL, NO_WAKE};
use crate::drain::{completion_of, fetch_computable};
use crate::{SectionId, SectionSpan};

/// Near-term window of the event scheduler's calendar queue, in cycles.
/// Almost every wake-up is `cycle + 1` (the fetch continuation each
/// instruction schedules) or `cycle + 2`; those land in a ring of vectors
/// instead of paying a binary-heap push per fetched instruction.
const NEAR_WINDOW: u64 = 8;

/// Two-level per-core wake-up queue: a calendar ring for events within
/// [`NEAR_WINDOW`] cycles of the clock and a binary heap for the far
/// future. Entries are `(cycle, local core)`; an entry is *stale* when
/// the core's `wake_at` no longer matches (a sooner wake-up replaced it)
/// and is dropped when its cycle is visited. The clock never jumps past a
/// queued entry, so each ring slot only ever holds entries for the single
/// in-window cycle it maps to.
pub(crate) struct WakeQueue {
    near: [Vec<(u64, usize)>; NEAR_WINDOW as usize],
    far: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    /// Number of entries across the `near` ring, so the common empty-ring
    /// case skips the slot scan.
    near_entries: usize,
    /// Current clock; all queued entries are at cycles `>= horizon`.
    horizon: u64,
}

impl WakeQueue {
    fn new() -> WakeQueue {
        WakeQueue {
            near: std::array::from_fn(|_| Vec::new()),
            far: std::collections::BinaryHeap::new(),
            near_entries: 0,
            horizon: 0,
        }
    }

    pub(crate) fn push(&mut self, at: u64, idx: usize) {
        debug_assert!(at >= self.horizon);
        if at < self.horizon + NEAR_WINDOW {
            self.near[(at % NEAR_WINDOW) as usize].push((at, idx));
            self.near_entries += 1;
        } else {
            self.far.push(std::cmp::Reverse((at, idx)));
        }
    }

    /// Number of queued entries (stale ones included) — the calendar
    /// depth gauge the probe layer samples.
    pub(crate) fn len(&self) -> usize {
        self.near_entries + self.far.len()
    }

    /// The earliest cycle holding a queued entry (possibly a stale one —
    /// visiting a stale cycle is a no-op that discards it).
    pub(crate) fn next_at(&self) -> Option<u64> {
        let mut best = self.far.peek().map(|&std::cmp::Reverse((at, _))| at);
        if self.near_entries > 0 {
            for cycle in self.horizon..self.horizon + NEAR_WINDOW {
                if !self.near[(cycle % NEAR_WINDOW) as usize].is_empty() {
                    best = Some(best.map_or(cycle, |b| b.min(cycle)));
                    break;
                }
            }
        }
        best
    }

    /// Advances the clock to `cycle`; subsequent pushes map into the ring
    /// relative to it.
    fn advance_to(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.horizon);
        self.horizon = cycle;
    }

    /// Drains every entry due at `cycle` into `due` (unsorted local core
    /// indices; stale entries — whose core no longer wakes at `cycle` —
    /// are filtered by the caller's `wake_at` check).
    fn drain_due(&mut self, cycle: u64, due: &mut Vec<usize>) {
        if self.near_entries > 0 {
            let slot = &mut self.near[(cycle % NEAR_WINDOW) as usize];
            debug_assert!(slot.iter().all(|&(at, _)| at == cycle));
            self.near_entries -= slot.len();
            due.extend(slot.drain(..).map(|(_, idx)| idx));
        }
        while let Some(&std::cmp::Reverse((at, idx))) = self.far.peek() {
            if at > cycle {
                break;
            }
            self.far.pop();
            due.push(idx);
        }
    }
}

/// The sorted set of a cluster's cores that act on every cycle (fetching,
/// dequeuing, or releasing a next-cycle stall), kept as an intrusive
/// doubly-linked list over local core indices so that the overwhelmingly
/// common case — a core fetching straight-line code — costs *zero*
/// scheduling work per cycle: the core simply stays in the list. Cores
/// join when a calendar wake-up makes them act and leave when they go
/// idle or wait on a far event.
pub(crate) struct RunList {
    head: usize,
    next: Vec<usize>,
    prev: Vec<usize>,
    pub(crate) len: usize,
    /// Whether `head`/`next`/`prev` reflect the membership flags. Dense
    /// cycles scan the core columns and skip link maintenance entirely
    /// (membership is just the per-core flag plus `len`); the links are
    /// rebuilt in one pass when a sparse cycle needs to walk them again.
    links_valid: bool,
}

pub(crate) const NO_CORE: usize = usize::MAX;

impl RunList {
    fn new(cores: usize) -> RunList {
        RunList {
            head: NO_CORE,
            next: vec![NO_CORE; cores],
            prev: vec![NO_CORE; cores],
            len: 0,
            links_valid: true,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops link maintenance until [`RunList::ensure_links`] (a dense
    /// cycle is about to mutate membership through the flags alone).
    fn invalidate_links(&mut self) {
        self.links_valid = false;
    }

    /// Rebuilds the links from the membership flags if needed.
    fn ensure_links(&mut self, running: &[bool]) {
        if self.links_valid {
            return;
        }
        self.head = NO_CORE;
        let mut last = NO_CORE;
        for (idx, &member) in running.iter().enumerate() {
            if member {
                self.prev[idx] = last;
                self.next[idx] = NO_CORE;
                if last == NO_CORE {
                    self.head = idx;
                } else {
                    self.next[last] = idx;
                }
                last = idx;
            }
        }
        self.links_valid = true;
    }

    /// Inserts `idx`, keeping the links (when live) sorted by core index.
    pub(crate) fn insert(&mut self, running: &mut [bool], idx: usize) {
        debug_assert!(!running[idx]);
        running[idx] = true;
        self.len += 1;
        if !self.links_valid {
            return;
        }
        let mut after = NO_CORE;
        let mut cursor = self.head;
        while cursor != NO_CORE && cursor < idx {
            after = cursor;
            cursor = self.next[cursor];
        }
        self.next[idx] = cursor;
        self.prev[idx] = after;
        if cursor != NO_CORE {
            self.prev[cursor] = idx;
        }
        if after == NO_CORE {
            self.head = idx;
        } else {
            self.next[after] = idx;
        }
    }

    pub(crate) fn remove(&mut self, running: &mut [bool], idx: usize) {
        debug_assert!(running[idx]);
        running[idx] = false;
        self.len -= 1;
        if !self.links_valid {
            return;
        }
        let (p, n) = (self.prev[idx], self.next[idx]);
        if p == NO_CORE {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n != NO_CORE {
            self.prev[n] = p;
        }
    }
}

/// One cluster of the chip: a contiguous range of cores with its own
/// calendar queue, run list, and per-cycle effect buffers (local core
/// indices throughout; `start` maps them back to chip ids).
pub(crate) struct Cluster {
    pub(crate) start: usize,
    pub(crate) len: usize,
    pub(crate) wakes: WakeQueue,
    pub(crate) running: RunList,
    /// Calendar wake-ups due this cycle (drained at the top of the walk).
    due: Vec<usize>,
    /// Run-list membership changes deferred by the walk (`true` = join).
    membership: Vec<(usize, bool)>,
    /// Trace indices fetched this cycle, in walk (ascending core) order.
    pub(crate) fetched: Vec<u32>,
    /// `(global source core, created section)` fork messages, in walk
    /// order — committed to the NoC in this order so the link-bandwidth
    /// accounting matches the sequential engine's.
    pub(crate) sends: Vec<(u32, u32)>,
    /// `(local core, section, resumed)` fetch-slot entries of this cycle,
    /// in walk order — every dequeue, fresh or resumed. A resumed entry's
    /// saved resume point was consumed by the walk (the deferred
    /// `StallTable::clear_resume`); the commit phase also feeds all
    /// entries to the cycle-attribution accumulator and the probe.
    pub(crate) began: Vec<(u32, u32, bool)>,
    /// `(local core, section, fetched)` fetch-slot exits of this cycle,
    /// in walk order (`fetched` = the ending instruction was fetched this
    /// cycle; false only for the empty-section defensive path). Consumed
    /// by the sequential commit phase for attribution and the probe.
    pub(crate) ended: Vec<(u32, u32, bool)>,
    /// Local core indices that entered a fetch stall this cycle; the
    /// post-drain dispatch parks or reschedules them.
    pub(crate) newly_stalled: Vec<u32>,
}

impl Cluster {
    fn new(start: usize, len: usize) -> Cluster {
        Cluster {
            start,
            len,
            wakes: WakeQueue::new(),
            running: RunList::new(len),
            due: Vec::new(),
            membership: Vec::new(),
            fetched: Vec::new(),
            sends: Vec::new(),
            began: Vec::new(),
            ended: Vec::new(),
            newly_stalled: Vec::new(),
        }
    }
}

/// The contiguous near-equal `(start, len)` windows the chip is sharded
/// into for `clusters` clusters (clamped to at least one core per
/// cluster). This is the partition both the engine and the static walk
/// certifier reason about: ascending, disjoint, tiling `[0, cores)` by
/// construction for every cluster count.
pub fn cluster_windows(cores: usize, clusters: usize) -> Vec<(usize, usize)> {
    let k = clusters.clamp(1, cores.max(1));
    let base = cores / k;
    let rem = cores % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push((start, len));
        start += len;
    }
    debug_assert_eq!(start, cores);
    out
}

/// Splits `cores` cores into `clusters` contiguous clusters of
/// near-equal size over [`cluster_windows`].
pub(crate) fn partition(cores: usize, clusters: usize) -> Vec<Cluster> {
    cluster_windows(cores, clusters)
        .into_iter()
        .map(|(start, len)| Cluster::new(start, len))
        .collect()
}

/// Registers `at` as core `idx`'s next wake-up cycle (keeping the earlier
/// one when the core already has a sooner event).
pub(crate) fn schedule(chip: &mut ChipState, cluster: &mut Cluster, idx: usize, at: u64) {
    let existing = chip.wake_at[idx];
    if existing == NO_WAKE || existing > at {
        chip.wake_at[idx] = at;
        cluster.wakes.push(at, idx - cluster.start);
    }
}

/// The read-only inputs every cluster's walk shares for one cycle.
pub(crate) struct WalkCtx<'a> {
    pub(crate) arena: &'a TraceArena,
    pub(crate) sections: &'a [SectionSpan],
    pub(crate) created_by: &'a HashMap<usize, SectionId>,
    /// The resolver's tagged completion column (read-only this phase).
    pub(crate) complete: &'a [u64],
    /// The stall table's per-section resume points (clears deferred
    /// through the `begun` buffer).
    pub(crate) resume_at: &'a [usize],
    /// The intrusive ready-queue links (pops only read them).
    pub(crate) queue_next: &'a [u32],
    pub(crate) fetch_stalls: bool,
    pub(crate) cycle: u64,
}

/// One cluster's fetch-decode phase for one cycle: drains the cluster's
/// due calendar wake-ups, steps every acting core in ascending local
/// order (dense scan or sparse run-list merge, same as the sequential
/// engine), buffers all cross-cluster effects, and applies the deferred
/// run-list membership changes. Safe to run concurrently across clusters:
/// everything written is cluster-local.
pub(crate) fn walk_cluster(cluster: &mut Cluster, view: &mut CoreView<'_>, ctx: &WalkCtx<'_>) {
    let cycle = ctx.cycle;
    cluster.wakes.advance_to(cycle);
    let mut due = std::mem::take(&mut cluster.due);
    due.clear();
    cluster.wakes.drain_due(cycle, &mut due);

    macro_rules! step_core {
        ($local:expr, $is_member:expr) => {{
            let local: usize = $local;
            let is_member: bool = $is_member;

            if view.current[local] == NO_SECTION {
                // Dequeuing the next ready section consumes this cycle;
                // fetch starts on the next one.
                let head = view.queue_head[local];
                if head != NO_SECTION {
                    view.queue_head[local] = ctx.queue_next[head as usize];
                    if view.queue_head[local] == NO_SECTION {
                        view.queue_tail[local] = NO_SECTION;
                    }
                    view.current[local] = head;
                    let resume = ctx.resume_at[head as usize];
                    view.next_seq[local] = if resume == usize::MAX {
                        cluster.began.push((local as u32, head, false));
                        ctx.sections[head as usize].start as u32
                    } else {
                        cluster.began.push((local as u32, head, true));
                        resume as u32
                    };
                    if !is_member {
                        cluster.membership.push((local, true));
                    }
                } else if is_member {
                    cluster.membership.push((local, false));
                }
                continue;
            }
            if view.stall_on[local] != NO_STALL {
                let stalled_on = view.stall_on[local] as usize;
                match completion_of(ctx.complete, stalled_on) {
                    Some(c) if c < cycle => {
                        view.stall_on[local] = NO_STALL;
                    }
                    Some(c) => {
                        // The stall releases once the control
                        // instruction's completion is past.
                        if c + 1 == cycle + 1 {
                            if !is_member {
                                cluster.membership.push((local, true));
                            }
                        } else {
                            if is_member {
                                cluster.membership.push((local, false));
                            }
                            view.wake_at[local] = c + 1;
                            cluster.wakes.push(c + 1, local);
                        }
                        continue;
                    }
                    // A stall with an unknown completion parks at the end
                    // of its stall cycle; it never holds the fetch slot
                    // across cycles.
                    None => unreachable!("an in-place stall has a known completion"),
                }
            }
            let sid = view.current[local] as usize;
            let span = &ctx.sections[sid];
            if view.next_seq[local] as usize >= span.end {
                view.current[local] = NO_SECTION;
                cluster.ended.push((local as u32, sid as u32, false));
                if view.queue_head[local] == NO_SECTION {
                    if is_member {
                        cluster.membership.push((local, false));
                    }
                } else if !is_member {
                    cluster.membership.push((local, true));
                }
                continue;
            }
            let seq = view.next_seq[local] as usize;
            let kind = ctx.arena.kind(seq);
            cluster.fetched.push(seq as u32);
            view.next_seq[local] += 1;

            // A fork sends a section-creation message to the host core of
            // the created section.
            if kind == TraceKind::Fork {
                if let Some(&child) = ctx.created_by.get(&seq) {
                    cluster
                        .sends
                        .push(((cluster.start + local) as u32, child.0 as u32));
                }
            }

            let ends_section = kind == TraceKind::EndFork
                || kind == TraceKind::Halt
                || view.next_seq[local] as usize >= span.end;
            if ends_section {
                view.current[local] = NO_SECTION;
                cluster.ended.push((local as u32, sid as u32, true));
                if view.queue_head[local] == NO_SECTION {
                    if is_member {
                        cluster.membership.push((local, false));
                    }
                } else if !is_member {
                    cluster.membership.push((local, true));
                }
            } else if ctx.fetch_stalls
                && ctx.arena.is_control(seq)
                && !fetch_computable(ctx.arena, seq, ctx.complete, cycle)
            {
                // The fetch stage could not compute this control
                // instruction (empty sources): the IP stays empty until
                // the instruction executes. Tentatively keep the core
                // running; the post-drain dispatch parks or reschedules
                // it if the stall spans cycles.
                view.stall_on[local] = seq as u32;
                cluster.newly_stalled.push(local as u32);
                if !is_member {
                    cluster.membership.push((local, true));
                }
            } else if !is_member {
                // Fetch continuation: members stay in the run list at
                // zero cost, joiners enter it.
                cluster.membership.push((local, true));
            }
        }};
    }

    if 2 * cluster.running.len >= cluster.len {
        // Dense path: most cores act every cycle, so a linear scan of the
        // columns (the reference loop's shape, minus the idle-core queue
        // probes) beats walking the list. Calendar wake-ups due now are
        // exactly the non-members whose `wake_at` matches, so the scan
        // covers them in index order and the drained entries are dropped.
        // Membership updates go through the flags alone; the links are
        // rebuilt when a sparse cycle next needs them.
        cluster.running.invalidate_links();
        for local in 0..cluster.len {
            let is_member = view.running[local];
            if !is_member {
                if view.wake_at[local] != cycle {
                    continue;
                }
                view.wake_at[local] = NO_WAKE;
            }
            step_core!(local, is_member);
        }
    } else {
        // Sparse path: walk the run-list members, merging in the calendar
        // wake-ups (rare) by a two-pointer pass.
        cluster.running.ensure_links(view.running);
        due.sort_unstable();
        let mut di = 0usize;
        let mut cursor = cluster.running.head;
        loop {
            // Pick the smaller of the next due core and the next member;
            // a due entry for a member is stale (skipped).
            let (local, is_member) = match (due.get(di), cursor) {
                (Some(&d), cur) if cur == NO_CORE || d <= cur => {
                    di += 1;
                    if view.wake_at[d] != cycle {
                        continue; // stale entry
                    }
                    view.wake_at[d] = NO_WAKE;
                    (d, false)
                }
                (_, cur) if cur != NO_CORE => {
                    cursor = cluster.running.next[cur];
                    (cur, true)
                }
                _ => break,
            };
            step_core!(local, is_member);
        }
    }
    due.clear();
    cluster.due = due;

    // Apply the walk's membership changes before anything after the walk
    // consults or edits the run list.
    let mut membership = std::mem::take(&mut cluster.membership);
    for &(local, join) in &membership {
        if join {
            cluster.running.insert(view.running, local);
        } else {
            cluster.running.remove(view.running, local);
        }
    }
    membership.clear();
    cluster.membership = membership;
}
